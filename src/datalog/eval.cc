#include "datalog/eval.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "datalog/pretty.h"
#include "util/strings.h"

namespace lbtrust::datalog {

using util::Result;
using util::Status;

/// A small claim-based worker pool for intra-round rule parallelism.
/// `Run(n, body)` executes body(0..n-1) with the calling thread
/// participating: items are claimed with an atomic counter, so a worker
/// that the scheduler starves simply claims nothing and the caller drains
/// the queue itself (important when threads oversubscribe the machine).
/// Each Run publishes a fresh shared state block; stale workers that wake
/// late claim from their old, exhausted block and then re-wait, so a
/// late wakeup can never execute a new round's items with an old body.
class EvalWorkerPool {
 public:
  explicit EvalWorkerPool(unsigned workers) { EnsureWorkers(workers); }

  /// Grows the pool to at least `workers` threads (called between
  /// rounds, never concurrently with Run). New threads start in the
  /// wait loop and pick up the next round normally.
  void EnsureWorkers(unsigned workers) {
    threads_.reserve(workers);
    while (threads_.size() < workers) {
      threads_.emplace_back([this] { ThreadMain(); });
    }
  }

  size_t worker_count() const { return threads_.size(); }

  ~EvalWorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  void Run(size_t nitems, const std::function<void(size_t)>& body) {
    auto state = std::make_shared<RoundState>();
    state->nitems = nitems;
    state->body = &body;
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_ = state;
      ++epoch_;
    }
    epoch_fast_.fetch_add(1, std::memory_order_release);
    cv_.notify_all();
    Work(*state);
    // Claims are exhausted; wait for items still running on workers. The
    // last done-increment happens-before the acquire load, so the caller
    // observes every buffer write the workers made.
    size_t spins = 0;
    while (state->done.load(std::memory_order_acquire) != nitems) {
      if (++spins > 64) std::this_thread::yield();
    }
    std::lock_guard<std::mutex> lock(mu_);
    current_.reset();
  }

 private:
  struct RoundState {
    size_t nitems = 0;
    const std::function<void(size_t)>* body = nullptr;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
  };

  static void Work(RoundState& s) {
    for (;;) {
      size_t i = s.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s.nitems) return;
      (*s.body)(i);
      s.done.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  void ThreadMain() {
    uint64_t seen = 0;
    for (;;) {
      // Bounded spin before sleeping: rounds arrive back-to-back during a
      // fixpoint, so catching the next epoch without a futex round-trip
      // keeps per-round dispatch latency in the sub-microsecond range on
      // multicore. The periodic yield keeps oversubscribed (fewer cores
      // than threads) machines degrading gracefully instead of burning
      // the merge thread's quantum.
      for (int spin = 0; spin < 4096; ++spin) {
        if (epoch_fast_.load(std::memory_order_acquire) != seen) break;
        if ((spin & 31) == 31) std::this_thread::yield();
      }
      std::shared_ptr<RoundState> state;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] {
          return stop_ || (epoch_ != seen && current_ != nullptr);
        });
        if (stop_) return;
        seen = epoch_;
        state = current_;
      }
      Work(*state);
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t epoch_ = 0;
  std::atomic<uint64_t> epoch_fast_{0};
  bool stop_ = false;
  std::shared_ptr<RoundState> current_;
};

void EvalWorkerPoolDeleter::operator()(EvalWorkerPool* pool) const {
  delete pool;
}

Evaluator::Evaluator(const BuiltinRegistry* builtins, RelationStore* store,
                     ProvenanceStore* provenance, unsigned threads,
                     EvalWorkerPoolHandle* shared_pool,
                     obs::MetricsRegistry* metrics, obs::Tracer* tracer)
    : builtins_(builtins),
      store_(store),
      provenance_(provenance),
      pool_(store->pool()),
      threads_(threads == 0 ? 1 : threads),
      metrics_(metrics),
      tracer_(tracer),
      workers_slot_(shared_pool != nullptr ? shared_pool : &owned_workers_) {
  if (metrics_ != nullptr) {
    tuples_derived_ = metrics_->GetCounter("lbtrust_tuples_derived_total");
    rounds_total_ = metrics_->GetCounter("lbtrust_eval_rounds_total");
    delta_rows_ = metrics_->GetHistogram("lbtrust_fixpoint_delta_rows");
    merge_parallel_ = metrics_->GetCounter("lbtrust_merge_parallel_total");
    merge_sequential_ = metrics_->GetCounter("lbtrust_merge_sequential_total");
    merge_latency_ =
        metrics_->GetHistogram("lbtrust_merge_latency_microseconds");
  }
}

obs::Counter* Evaluator::MergeShardCounter(size_t shard) {
  if (merge_shard_rows_.size() <= shard) {
    merge_shard_rows_.resize(shard + 1, nullptr);
  }
  if (merge_shard_rows_[shard] == nullptr) {
    merge_shard_rows_[shard] = metrics_->GetCounter(
        "lbtrust_merge_shard_rows_total",
        "shard=\"" + std::to_string(shard) + "\"");
  }
  return merge_shard_rows_[shard];
}

Evaluator::~Evaluator() = default;

uint64_t RelationStore::NextGeneration() {
  // Atomic so concurrent workspace construction (one workspace per
  // evaluation thread) can never mint duplicate generations, which would
  // let a stale CompiledLiteral cache validate against a reused address.
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

Relation* RelationStore::GetOrCreate(const std::string& name, size_t arity) {
  auto it = rels_.find(name);
  if (it == rels_.end()) {
    it = rels_.emplace(name, Relation(arity, pool_, default_shards_)).first;
  }
  return &it->second;
}

Relation* RelationStore::Get(const std::string& name) {
  auto it = rels_.find(name);
  return it == rels_.end() ? nullptr : &it->second;
}

const Relation* RelationStore::Get(const std::string& name) const {
  auto it = rels_.find(name);
  return it == rels_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

namespace {

// Collects every variable name in a term, descending into quoted code
// (pattern variables share the enclosing rule's scope, §3.3).
void CollectDeep(const Term& t, std::vector<std::string>* out);

void CollectDeepAtom(const Atom& a, std::vector<std::string>* out) {
  if (a.meta_atom) {
    out->push_back(a.star ? StarKey(a.predicate) : a.predicate);
    return;
  }
  if (a.meta_functor) out->push_back(a.predicate);
  if (a.partition) CollectDeep(*a.partition, out);
  for (const Term& t : a.args) CollectDeep(t, out);
}

void CollectDeepRule(const Rule& r, std::vector<std::string>* out) {
  for (const Atom& h : r.heads) CollectDeepAtom(h, out);
  for (const Literal& l : r.body) CollectDeepAtom(l.atom, out);
  if (r.aggregate.has_value()) {
    out->push_back(r.aggregate->result_var);
    out->push_back(r.aggregate->input_var);
  }
}

void CollectDeep(const Term& t, std::vector<std::string>* out) {
  switch (t.kind) {
    case Term::Kind::kVariable:
      out->push_back(t.var);
      return;
    case Term::Kind::kStarVar:
      out->push_back(StarKey(t.var));
      return;
    case Term::Kind::kExpr:
      CollectDeep(*t.lhs, out);
      CollectDeep(*t.rhs, out);
      return;
    case Term::Kind::kPartRef:
      CollectDeep(*t.part_key, out);
      return;
    case Term::Kind::kConstant:
      if (t.value.kind() == ValueKind::kCode) {
        const CodeValue& code = t.value.AsCode();
        switch (code.what) {
          case CodeValue::What::kRule:
            CollectDeepRule(*code.rule, out);
            break;
          case CodeValue::What::kAtom:
            CollectDeepAtom(*code.atom, out);
            break;
          case CodeValue::What::kTerm:
            CollectDeep(*code.term, out);
            break;
          default:
            break;
        }
      }
      return;
    case Term::Kind::kMe:
      return;
  }
}

// Variables that occur *outside* quoted code (must be bound for heads).
void CollectShallow(const Term& t, std::vector<std::string>* out) {
  switch (t.kind) {
    case Term::Kind::kVariable:
    case Term::Kind::kStarVar:
      out->push_back(t.var);
      return;
    case Term::Kind::kExpr:
      CollectShallow(*t.lhs, out);
      CollectShallow(*t.rhs, out);
      return;
    case Term::Kind::kPartRef:
      CollectShallow(*t.part_key, out);
      return;
    default:
      return;
  }
}

CompiledArg CompileArg(const Term& t, VarTable* vars) {
  CompiledArg arg;
  arg.term = CloneTerm(t);
  std::vector<std::string> deep;
  CollectDeep(t, &deep);
  for (const std::string& name : deep) {
    arg.term_slots.push_back(vars->Intern(name));
  }
  if (deep.empty()) {
    arg.kind = CompiledArg::Kind::kConst;
    Bindings empty;
    VarTable no_vars;
    Result<Value> v = EvalGroundTerm(t, no_vars, empty);
    // Ground terms always evaluate (code stays code; arithmetic folds).
    arg.constant = v.ok() ? *v : Value();
    return arg;
  }
  if (t.is_variable()) {
    arg.kind = CompiledArg::Kind::kVar;
    arg.slot = vars->Intern(t.var);
    return arg;
  }
  // Arithmetic can only check; patterns (quoted code, partition refs,
  // star vars) bind their variables on match.
  arg.kind = (t.kind == Term::Kind::kExpr) ? CompiledArg::Kind::kExpr
                                           : CompiledArg::Kind::kPattern;
  return arg;
}

std::vector<CompiledArg> CompileAtomCols(const Atom& atom, VarTable* vars) {
  std::vector<CompiledArg> cols;
  cols.reserve(atom.Arity());
  if (atom.partition) cols.push_back(CompileArg(*atom.partition, vars));
  for (const Term& t : atom.args) cols.push_back(CompileArg(t, vars));
  return cols;
}

// Greedy scheduling -------------------------------------------------------

struct SchedState {
  std::vector<bool> bound;  // per slot
  bool IsBound(int slot) const {
    return slot >= 0 && slot < static_cast<int>(bound.size()) && bound[slot];
  }
  void Bind(int slot) {
    if (slot >= static_cast<int>(bound.size())) bound.resize(slot + 1, false);
    bound[slot] = true;
  }
};

bool ArgGround(const CompiledArg& arg, const SchedState& st) {
  if (arg.kind == CompiledArg::Kind::kConst) return true;
  for (int slot : arg.term_slots) {
    if (!st.IsBound(slot)) return false;
  }
  return true;
}

// Slots a literal guarantees to bind when it succeeds.
void BindLiteralOutputs(const CompiledLiteral& lit, SchedState* st) {
  switch (lit.kind) {
    case CompiledLiteral::Kind::kRelation:
      for (const CompiledArg& c : lit.cols) {
        if (c.kind == CompiledArg::Kind::kVar ||
            c.kind == CompiledArg::Kind::kPattern) {
          for (int slot : c.term_slots) st->Bind(slot);
        }
      }
      return;
    case CompiledLiteral::Kind::kEquality:
    case CompiledLiteral::Kind::kBuiltin:
      for (const CompiledArg& c : lit.cols) {
        for (int slot : c.term_slots) st->Bind(slot);
      }
      return;
    case CompiledLiteral::Kind::kNegation:
      return;
  }
}

// Variables occurring in literals other than `skip` or in the head.
std::set<int> SlotsUsedElsewhere(const CompiledRule& cr, size_t skip) {
  std::set<int> used;
  for (size_t i = 0; i < cr.body.size(); ++i) {
    if (i == skip) continue;
    for (const CompiledArg& c : cr.body[i].cols) {
      used.insert(c.term_slots.begin(), c.term_slots.end());
    }
  }
  for (const CompiledArg& c : cr.head_cols) {
    used.insert(c.term_slots.begin(), c.term_slots.end());
  }
  return used;
}

// Returns a negative score when not schedulable.
int ScheduleScore(const CompiledRule& cr, size_t idx, const SchedState& st) {
  const CompiledLiteral& lit = cr.body[idx];
  switch (lit.kind) {
    case CompiledLiteral::Kind::kEquality: {
      bool g0 = ArgGround(lit.cols[0], st);
      bool g1 = ArgGround(lit.cols[1], st);
      // Pattern sides can consume a ground other side; expressions cannot
      // be inverted.
      if (g0 && g1) return 3000;
      if (g0 && lit.cols[1].kind != CompiledArg::Kind::kExpr) return 2900;
      if (g1 && lit.cols[0].kind != CompiledArg::Kind::kExpr) return 2900;
      return -1;
    }
    case CompiledLiteral::Kind::kBuiltin: {
      if (lit.negated) {
        for (const CompiledArg& c : lit.cols) {
          if (!ArgGround(c, st)) return -1;
        }
        return 2500;
      }
      for (const std::string& mode : lit.builtin->modes) {
        bool ok = true;
        for (size_t i = 0; i < mode.size(); ++i) {
          if (mode[i] == 'b' && !ArgGround(lit.cols[i], st)) {
            ok = false;
            break;
          }
        }
        if (ok) return 2500;
      }
      return -1;
    }
    case CompiledLiteral::Kind::kNegation: {
      // Schedulable when every variable shared with the rest of the rule
      // is bound; purely local variables act as wildcards.
      std::set<int> elsewhere = SlotsUsedElsewhere(cr, idx);
      for (const CompiledArg& c : lit.cols) {
        for (int slot : c.term_slots) {
          if (!st.IsBound(slot) && elsewhere.count(slot)) return -1;
        }
      }
      return 2400;
    }
    case CompiledLiteral::Kind::kRelation: {
      int bound_cols = 0;
      for (const CompiledArg& c : lit.cols) {
        if (c.kind == CompiledArg::Kind::kExpr && !ArgGround(c, st)) {
          return -1;  // cannot match through arithmetic
        }
        if (ArgGround(c, st)) ++bound_cols;
      }
      return 1000 + 50 * bound_cols;
    }
  }
  return -1;
}

// True when the rule evaluates entirely on the id plane (see the
// CompiledRule::parallel_safe comment).
bool RuleParallelSafe(const CompiledRule& cr) {
  if (cr.agg.has_value()) return false;
  auto cols_safe = [](const std::vector<CompiledArg>& cols) {
    for (const CompiledArg& c : cols) {
      if (c.kind != CompiledArg::Kind::kConst &&
          c.kind != CompiledArg::Kind::kVar) {
        return false;
      }
    }
    return true;
  };
  if (!cols_safe(cr.head_cols)) return false;
  for (const CompiledLiteral& lit : cr.body) {
    if (lit.kind != CompiledLiteral::Kind::kRelation &&
        lit.kind != CompiledLiteral::Kind::kNegation) {
      return false;
    }
    if (!cols_safe(lit.cols)) return false;
  }
  return true;
}

// Statically derives the probe mask of every relation/negation literal
// along `order`. For const/var-only rules the runtime mask at a position
// is exactly "constant columns + variables bound by earlier literals", so
// the parallel evaluator can pre-build these indexes before freezing.
CompiledRule::OrderProbes ComputeOrderProbes(const CompiledRule& cr,
                                             const std::vector<int>& order) {
  CompiledRule::OrderProbes out;
  SchedState st;
  st.bound.resize(cr.vars.size(), false);
  for (size_t oi = 0; oi < order.size(); ++oi) {
    const CompiledLiteral& lit = cr.body[static_cast<size_t>(order[oi])];
    if (lit.kind == CompiledLiteral::Kind::kRelation ||
        lit.kind == CompiledLiteral::Kind::kNegation) {
      const size_t arity = lit.cols.size();
      uint64_t mask = 0;
      for (size_t i = 0; i < arity; ++i) {
        const CompiledArg& c = lit.cols[i];
        if (c.kind == CompiledArg::Kind::kConst ||
            (c.kind == CompiledArg::Kind::kVar && st.IsBound(c.slot))) {
          mask |= uint64_t{1} << i;
        }
      }
      const uint64_t full =
          arity >= 64 ? ~uint64_t{0} : (uint64_t{1} << arity) - 1;
      if (oi == 0 && lit.kind == CompiledLiteral::Kind::kRelation) {
        // Leading relation literal: chunks enumerate its row range
        // directly (filtering constants with RowMatchesKey), no index.
        out.partition_first = true;
      } else if (lit.kind == CompiledLiteral::Kind::kRelation) {
        // mask == 0 scans; mask == full short-circuits to ContainsIds.
        if (mask != 0 && mask != full) {
          out.index_masks.push_back({order[oi], mask});
        }
      } else {
        // Negation probes MatchesIds for any nonzero mask (incl. full).
        if (mask != 0) out.index_masks.push_back({order[oi], mask});
      }
    }
    BindLiteralOutputs(lit, &st);
  }
  return out;
}

Result<std::vector<int>> ScheduleOrder(const CompiledRule& cr,
                                       int forced_first) {
  std::vector<int> order;
  std::vector<bool> done(cr.body.size(), false);
  SchedState st;
  st.bound.resize(cr.vars.size(), false);
  if (forced_first >= 0) {
    order.push_back(forced_first);
    done[static_cast<size_t>(forced_first)] = true;
    BindLiteralOutputs(cr.body[static_cast<size_t>(forced_first)], &st);
  }
  while (order.size() < cr.body.size()) {
    int best = -1;
    int best_score = -1;
    for (size_t i = 0; i < cr.body.size(); ++i) {
      if (done[i]) continue;
      int score = ScheduleScore(cr, i, st);
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    if (best < 0 || best_score < 0) {
      return util::UnsafeProgram(util::StrCat(
          "no safe evaluation order for rule: ", PrintRule(cr.source)));
    }
    order.push_back(best);
    done[static_cast<size_t>(best)] = true;
    BindLiteralOutputs(cr.body[static_cast<size_t>(best)], &st);
  }
  return order;
}

}  // namespace

Result<std::unique_ptr<CompiledRule>> CompileRule(
    const Rule& rule, const BuiltinRegistry& builtins) {
  LB_RETURN_IF_ERROR(ValidateInstallableRule(rule));
  auto cr = std::make_unique<CompiledRule>();
  cr->source = CloneRule(rule);
  cr->agg = rule.aggregate;

  const Atom& head = rule.heads[0];
  cr->head_pred = head.predicate;
  cr->head_cols = CompileAtomCols(head, &cr->vars);
  if (head.Arity() > Relation::kMaxArity) {
    return util::TypeError("predicates are limited to 64 columns");
  }

  for (const Literal& lit : rule.body) {
    CompiledLiteral cl;
    if (lit.atom.Arity() > Relation::kMaxArity) {
      return util::TypeError("predicates are limited to 64 columns");
    }
    cl.pred = lit.atom.predicate;
    cl.negated = lit.negated;
    cl.cols = CompileAtomCols(lit.atom, &cr->vars);
    if (cl.pred == "=" && !lit.negated) {
      cl.kind = CompiledLiteral::Kind::kEquality;
    } else if (const BuiltinDef* def = builtins.Find(cl.pred)) {
      if (cl.pred == "=") {
        // Negated equality behaves as '!='.
        cl.kind = CompiledLiteral::Kind::kBuiltin;
        cl.builtin = builtins.Find("!=");
        cl.negated = false;
      } else {
        cl.kind = CompiledLiteral::Kind::kBuiltin;
        cl.builtin = def;
      }
      if (cl.cols.size() != cl.builtin->arity) {
        return util::TypeError(util::StrCat("builtin '", cl.pred,
                                            "' expects ", cl.builtin->arity,
                                            " arguments"));
      }
    } else if (lit.negated) {
      cl.kind = CompiledLiteral::Kind::kNegation;
    } else {
      cl.kind = CompiledLiteral::Kind::kRelation;
    }
    if (cl.kind == CompiledLiteral::Kind::kRelation) {
      cr->relation_positions.push_back(static_cast<int>(cr->body.size()));
    }
    cr->body.push_back(std::move(cl));
  }

  LB_ASSIGN_OR_RETURN(cr->order_full, ScheduleOrder(*cr, -1));
  for (int pos : cr->relation_positions) {
    LB_ASSIGN_OR_RETURN(std::vector<int> order, ScheduleOrder(*cr, pos));
    cr->order_delta[pos] = std::move(order);
  }
  cr->parallel_safe = RuleParallelSafe(*cr);
  if (cr->parallel_safe) {
    cr->probes_full = ComputeOrderProbes(*cr, cr->order_full);
    for (const auto& [pos, order] : cr->order_delta) {
      cr->probes_delta[pos] = ComputeOrderProbes(*cr, order);
    }
  }

  // Safety: head variables outside quoted code must be bound by the body.
  SchedState st;
  st.bound.resize(cr->vars.size(), false);
  for (int idx : cr->order_full) {
    BindLiteralOutputs(cr->body[static_cast<size_t>(idx)], &st);
  }
  if (cr->agg.has_value()) {
    cr->agg_input_slot = cr->vars.Find(cr->agg->input_var);
    if (cr->agg_input_slot < 0 || !st.IsBound(cr->agg_input_slot)) {
      return util::UnsafeProgram(util::StrCat(
          "aggregate input variable '", cr->agg->input_var,
          "' is not bound by the body: ", PrintRule(rule)));
    }
    cr->agg_result_slot = cr->vars.Find(cr->agg->result_var);
    if (cr->agg_result_slot >= 0 && st.IsBound(cr->agg_result_slot)) {
      return util::UnsafeProgram(util::StrCat(
          "aggregate result variable '", cr->agg->result_var,
          "' must not be bound by the body: ", PrintRule(rule)));
    }
    if (cr->agg_result_slot < 0) cr->agg_result_slot = cr->vars.Intern(cr->agg->result_var);
  }
  std::vector<std::string> head_vars;
  if (head.partition) CollectShallow(*head.partition, &head_vars);
  for (const Term& t : head.args) CollectShallow(t, &head_vars);
  for (const std::string& name : head_vars) {
    int slot = cr->vars.Find(name);
    bool is_agg_result =
        cr->agg.has_value() && name == cr->agg->result_var;
    if (!is_agg_result && (slot < 0 || !st.IsBound(slot))) {
      return util::UnsafeProgram(util::StrCat(
          "head variable '", name, "' is not bound by the body: ",
          PrintRule(rule)));
    }
  }
  return cr;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

namespace {

// The interned id of a kConst column, computed once per (arg, pool) pair.
ValueId ConstId(const CompiledArg& arg, ValuePool* pool) {
  if (arg.const_pool_gen != pool->generation()) {
    arg.const_id = pool->Intern(arg.constant);
    arg.const_pool_gen = pool->generation();
  }
  return arg.const_id;
}

// Grounds a *head* column. Quoted-code constants are always constructible:
// bound meta-variables substitute in, unbound variables legitimately remain
// variables of the constructed code (e.g. del1's generated rule).
bool TryGroundHeadArg(const CompiledArg& arg, const VarTable& vars,
                      const Bindings& b, Value* out) {
  if (arg.kind == CompiledArg::Kind::kPattern &&
      arg.term.kind == Term::Kind::kConstant) {
    Result<Value> v = EvalGroundTerm(arg.term, vars, b);
    if (!v.ok()) return false;
    *out = std::move(*v);
    return true;
  }
  if (arg.kind == CompiledArg::Kind::kConst) {
    *out = arg.constant;
    return true;
  }
  if (arg.kind == CompiledArg::Kind::kVar) {
    if (!b.IsBound(arg.slot)) return false;
    *out = b.Get(arg.slot);
    return true;
  }
  for (int slot : arg.term_slots) {
    if (!b.IsBound(slot)) return false;
  }
  Result<Value> v = EvalGroundTerm(arg.term, vars, b);
  if (!v.ok()) return false;
  *out = std::move(*v);
  return true;
}

// Id counterpart of TryGroundHeadArg: kConst and kVar columns never
// materialize; only pattern/expression columns take the Value detour.
bool TryGroundHeadArgId(const CompiledArg& arg, const VarTable& vars,
                        const Bindings& b, ValuePool* pool, ValueId* out) {
  if (arg.kind == CompiledArg::Kind::kConst) {
    *out = ConstId(arg, pool);
    return true;
  }
  if (arg.kind == CompiledArg::Kind::kVar) {
    if (!b.IsBound(arg.slot)) return false;
    *out = b.slots[arg.slot];
    return true;
  }
  Value v;
  if (!TryGroundHeadArg(arg, vars, b, &v)) return false;
  *out = pool->Intern(v);
  return true;
}

// Tries to evaluate a column to a ground value under current bindings.
bool TryGroundArg(const CompiledArg& arg, const VarTable& vars,
                  const Bindings& b, Value* out) {
  switch (arg.kind) {
    case CompiledArg::Kind::kConst:
      *out = arg.constant;
      return true;
    case CompiledArg::Kind::kVar:
      if (b.IsBound(arg.slot)) {
        *out = b.Get(arg.slot);
        return true;
      }
      return false;
    case CompiledArg::Kind::kPattern:
    case CompiledArg::Kind::kExpr: {
      for (int slot : arg.term_slots) {
        if (!b.IsBound(slot)) return false;
      }
      Result<Value> v = EvalGroundTerm(arg.term, vars, b);
      if (!v.ok()) return false;
      *out = std::move(*v);
      return true;
    }
  }
  return false;
}

// Id counterpart of TryGroundArg — the probe-key builder. Constants and
// bound variables are pure id reads; patterns and arithmetic evaluate
// through Values. A computed value the pool has never seen is reported as
// kAbsent, NOT interned: no stored row can contain it, so the caller can
// short-circuit, and transient intermediates (e.g. `q(X*2)` probe keys
// that miss) never become workspace-lifetime pool entries.
enum class GroundArg { kUnbound, kGround, kAbsent };

GroundArg TryGroundArgId(const CompiledArg& arg, const VarTable& vars,
                         const Bindings& b, ValuePool* pool, ValueId* out) {
  switch (arg.kind) {
    case CompiledArg::Kind::kConst:
      // Bounded by program size; interning keeps the steady-state probe a
      // cached id read.
      *out = ConstId(arg, pool);
      return GroundArg::kGround;
    case CompiledArg::Kind::kVar:
      if (b.IsBound(arg.slot)) {
        *out = b.slots[arg.slot];
        return GroundArg::kGround;
      }
      return GroundArg::kUnbound;
    case CompiledArg::Kind::kPattern:
    case CompiledArg::Kind::kExpr: {
      for (int slot : arg.term_slots) {
        if (!b.IsBound(slot)) return GroundArg::kUnbound;
      }
      Result<Value> v = EvalGroundTerm(arg.term, vars, b);
      if (!v.ok()) return GroundArg::kUnbound;
      return pool->Find(*v, out) ? GroundArg::kGround : GroundArg::kAbsent;
    }
  }
  return GroundArg::kUnbound;
}

}  // namespace

Relation* Evaluator::ResolveRelation(const CompiledLiteral& lit,
                                     size_t arity) {
  if (lit.cached_store == store_ &&
      lit.cached_gen == store_->generation()) {
    return lit.cached_rel;
  }
  Relation* rel = store_->GetOrCreate(lit.pred, arity);
  lit.cached_store = store_;
  lit.cached_gen = store_->generation();
  lit.cached_rel = rel;
  return rel;
}

Status Evaluator::Step(ExecContext* ctx, size_t oi) {
  if (oi == ctx->order->size()) return ctx->on_solution();
  const CompiledLiteral& lit =
      ctx->rule->body[static_cast<size_t>((*ctx->order)[oi])];
  bool is_delta = (*ctx->order)[oi] == ctx->delta_pos;
  switch (lit.kind) {
    case CompiledLiteral::Kind::kRelation:
      return EvalRelation(ctx, oi, lit);
    case CompiledLiteral::Kind::kNegation:
      return EvalNegation(ctx, oi, lit);
    case CompiledLiteral::Kind::kEquality:
      return EvalEquality(ctx, oi, lit);
    case CompiledLiteral::Kind::kBuiltin:
      return EvalBuiltin(ctx, oi, lit);
  }
  (void)is_delta;
  return util::Internal("unknown literal kind");
}

Status Evaluator::EvalRelation(ExecContext* ctx, size_t oi,
                               const CompiledLiteral& lit) {
  int body_idx = (*ctx->order)[oi];
  Relation* rel = (body_idx == ctx->delta_pos)
                      ? ctx->delta_rel
                      : ResolveRelation(lit, lit.cols.size());
  const size_t arity = lit.cols.size();
  if (rel->arity() != arity) {
    return util::TypeError(util::StrCat("predicate '", lit.pred, "' used with ",
                                        lit.cols.size(), " columns, stored as ",
                                        rel->arity()));
  }
  Bindings& b = ctx->bindings;
  const VarTable& vars = ctx->rule->vars;

  uint64_t mask = 0;
  ValueId key[64];
  size_t nkey = 0;
  size_t open[64];
  size_t nopen = 0;
  for (size_t i = 0; i < arity; ++i) {
    ValueId id;
    switch (TryGroundArgId(lit.cols[i], vars, b, pool_, &id)) {
      case GroundArg::kGround:
        mask |= uint64_t{1} << i;
        key[nkey++] = id;
        break;
      case GroundArg::kAbsent:
        return util::OkStatus();  // value never interned: no row matches
      case GroundArg::kUnbound:
        open[nopen++] = i;
        break;
    }
  }

  // `row` is a caller-owned snapshot: recursive Step calls may insert into
  // `rel` (self-recursive rules) and reallocate its storage. The trail is
  // hoisted so its buffer is reused across the rows this frame enumerates.
  Trail trail;
  auto try_row = [&](const ValueId* row) -> Status {
    trail.clear();
    bool ok = true;
    for (size_t k = 0; k < nopen; ++k) {
      size_t i = open[k];
      const CompiledArg& col = lit.cols[i];
      if (col.kind == CompiledArg::Kind::kVar) {
        // The dominant case: bind or compare an 8-byte id, no Value.
        if (b.IsBound(col.slot)) {
          if (b.slots[col.slot] != row[i]) {
            ok = false;
            break;
          }
        } else {
          b.slots[col.slot] = row[i];
          trail.push_back(col.slot);
        }
      } else if (!UnifyTermValue(col.term, pool_->Get(row[i]),
                                 &ctx->rule->vars, &b, &trail)) {
        ok = false;
        break;
      }
    }
    Status st = util::OkStatus();
    if (ok) {
      if (ctx->premises != nullptr) {
        ctx->premises->emplace_back(lit.pred,
                                    MaterializeTuple(*pool_, row, arity));
      }
      st = Step(ctx, oi + 1);
      if (ctx->premises != nullptr) ctx->premises->pop_back();
    }
    UndoTrail(trail, &b);
    return st;
  };

  // Probe tallies are plain context-owned counters (see ExecContext);
  // `hits` counts rows the probe yielded, so hits/probes is the literal's
  // observed selectivity at this order position.
  if (oi == 0 && ctx->first_restricted) {
    // Worker-chunk enumeration: this task's leading literal is split into
    // row ranges. Constants filter with direct id compares instead of an
    // index, so the frozen relation needs no index for position 0 (and
    // delta relations never get one).
    // The chunk's [first_begin, first_end) is a range of shard-major
    // *positions* (shard 0's rows, then shard 1's, ...). The relation is
    // frozen for the whole chunked phase, so positions are stable here.
    const size_t limit = std::min(ctx->first_end, rel->size());
    ValueId row[64];
    uint64_t matched = 0;
    size_t base = 0;
    const size_t nshards = rel->shard_count();
    for (size_t s = 0; s < nshards && base < limit; ++s) {
      const size_t ns = rel->ShardSize(s);
      const size_t lo = ctx->first_begin > base ? ctx->first_begin - base : 0;
      const size_t hi = std::min(limit - base, ns);
      // The relation is frozen, so the shard's storage cannot reallocate:
      // hoist its base pointer and walk local offsets directly instead of
      // paying a row-id encode/decode round trip per row.
      const ValueId* sdata = rel->ShardData(s);
      for (size_t l = lo; l < hi; ++l) {
        const ValueId* src = sdata + l * arity;
        if (mask != 0) {
          size_t k = 0;
          bool match = true;
          for (size_t i = 0; i < arity; ++i) {
            if (mask & (uint64_t{1} << i)) {
              if (src[i] != key[k++]) {
                match = false;
                break;
              }
            }
          }
          if (!match) continue;
        }
        ++matched;
        if (arity > 0) std::memcpy(row, src, arity * sizeof(ValueId));
        LB_RETURN_IF_ERROR(try_row(row));
      }
      base += ns;
    }
    if (ctx->probe_tally != nullptr) {
      ctx->probe_tally[body_idx] += 1;
      ctx->hit_tally[body_idx] += matched;
    }
    return util::OkStatus();
  }
  if (nopen == 0 && body_idx != ctx->delta_pos &&
      mask == ((arity >= 64) ? ~uint64_t{0} : (uint64_t{1} << arity) - 1)) {
    // Fully bound probe: a primary-set membership check, no index at all.
    // (Delta relations skip this: they are append-only and carry no
    // primary set.)
    const bool hit = rel->ContainsIds(key);
    if (ctx->probe_tally != nullptr) {
      ctx->probe_tally[body_idx] += 1;
      ctx->hit_tally[body_idx] += hit ? 1 : 0;
    }
    if (!hit) return util::OkStatus();
    return try_row(key);
  }
  if (mask != 0) {
    std::vector<uint32_t>& ids = ctx->probe_scratch[oi];
    ids.clear();
    rel->LookupIds(mask, key, &ids);
    if (ctx->probe_tally != nullptr) {
      ctx->probe_tally[body_idx] += 1;
      ctx->hit_tally[body_idx] += ids.size();
    }
    ValueId row[64];
    for (uint32_t id : ids) {
      if (arity > 0) std::memcpy(row, rel->RowIds(id), arity * sizeof(ValueId));
      LB_RETURN_IF_ERROR(try_row(row));
    }
  } else {
    // Snapshot every shard's size up front: rows appended during recursion
    // (self-recursive rules may insert into ANY shard, including ones this
    // scan already passed) are handled by later semi-naive rounds, exactly
    // like the pre-sharding `n = rel->size()` snapshot.
    size_t snap[Relation::kMaxShards];
    const size_t nshards = rel->shard_count();
    size_t n = 0;
    for (size_t s = 0; s < nshards; ++s) {
      snap[s] = rel->ShardSize(s);
      n += snap[s];
    }
    if (ctx->probe_tally != nullptr) {
      ctx->probe_tally[body_idx] += 1;
      ctx->hit_tally[body_idx] += n;
    }
    ValueId row[64];
    for (size_t s = 0; s < nshards; ++s) {
      for (size_t l = 0; l < snap[s]; ++l) {
        if (arity > 0) {
          std::memcpy(row, rel->RowIds(rel->MakeRowId(s, l)),
                      arity * sizeof(ValueId));
        }
        LB_RETURN_IF_ERROR(try_row(row));
      }
    }
  }
  return util::OkStatus();
}

Status Evaluator::EvalNegation(ExecContext* ctx, size_t oi,
                               const CompiledLiteral& lit) {
  Relation* rel = ResolveRelation(lit, lit.cols.size());
  Bindings& b = ctx->bindings;
  const VarTable& vars = ctx->rule->vars;

  uint64_t mask = 0;
  ValueId key[64];
  size_t nkey = 0;
  size_t open_patterns[64];
  size_t nopen = 0;
  for (size_t i = 0; i < lit.cols.size(); ++i) {
    ValueId id;
    switch (TryGroundArgId(lit.cols[i], vars, b, pool_, &id)) {
      case GroundArg::kGround:
        mask |= uint64_t{1} << i;
        key[nkey++] = id;
        break;
      case GroundArg::kAbsent:
        // The computed value was never interned, so no stored row carries
        // it: the literal cannot match and the negation holds.
        return Step(ctx, oi + 1);
      case GroundArg::kUnbound:
        if (lit.cols[i].kind == CompiledArg::Kind::kPattern) {
          open_patterns[nopen++] = i;
        }
        // Unbound kVar columns are wildcards (∄ semantics, e.g. dd4's
        // `!delegates(me,_,P)` before P's delegation exists).
        break;
    }
  }

  bool found = false;
  if (nopen == 0) {
    found = rel->MatchesIds(mask, key);
  } else {
    std::vector<uint32_t>& ids = ctx->probe_scratch[oi];
    ids.clear();
    if (mask != 0) {
      rel->LookupIds(mask, key, &ids);
    } else {
      ids.reserve(rel->size());
      for (uint32_t id : rel->Rows()) ids.push_back(id);
    }
    for (uint32_t id : ids) {
      const ValueId* row = rel->RowIds(id);
      Trail trail;
      bool ok = true;
      for (size_t k = 0; k < nopen; ++k) {
        size_t i = open_patterns[k];
        if (!UnifyTermValue(lit.cols[i].term, pool_->Get(row[i]),
                            &ctx->rule->vars, &b, &trail)) {
          ok = false;
          break;
        }
      }
      UndoTrail(trail, &b);
      if (ok) {
        found = true;
        break;
      }
    }
  }
  if (found) return util::OkStatus();  // negation fails: no solutions here
  return Step(ctx, oi + 1);
}

Status Evaluator::EvalEquality(ExecContext* ctx, size_t oi,
                               const CompiledLiteral& lit) {
  Bindings& b = ctx->bindings;
  const VarTable& vars = ctx->rule->vars;
  // Value-level comparison: equality may relate two *computed* values
  // (e.g. X+1 = Y*2) that have no pool entry, so ids are the wrong
  // currency here — and materializing keeps transient arithmetic out of
  // the pool.
  Value v0, v1;
  bool g0 = TryGroundArg(lit.cols[0], vars, b, &v0);
  bool g1 = TryGroundArg(lit.cols[1], vars, b, &v1);
  if (g0 && g1) {
    if (v0 == v1) return Step(ctx, oi + 1);
    return util::OkStatus();
  }
  const CompiledArg* pattern = nullptr;
  const Value* value = nullptr;
  if (g0) {
    pattern = &lit.cols[1];
    value = &v0;
  } else if (g1) {
    pattern = &lit.cols[0];
    value = &v1;
  } else {
    // Both sides open (possible only via deferred pattern bindings): no
    // match rather than an error — mirrors EvalBuiltin.
    return util::OkStatus();
  }
  Trail trail;
  Status st = util::OkStatus();
  if (UnifyTermValue(pattern->term, *value, &ctx->rule->vars, &b, &trail)) {
    st = Step(ctx, oi + 1);
  }
  UndoTrail(trail, &b);
  return st;
}

Status Evaluator::EvalBuiltin(ExecContext* ctx, size_t oi,
                              const CompiledLiteral& lit) {
  Bindings& b = ctx->bindings;
  const VarTable& vars = ctx->rule->vars;
  std::vector<std::optional<Value>> args(lit.cols.size());
  for (size_t i = 0; i < lit.cols.size(); ++i) {
    Value v;
    if (TryGroundArg(lit.cols[i], vars, b, &v)) args[i] = std::move(v);
  }
  // Mode check (compile guaranteed one exists given schedule, but builtins
  // may also be reached through EvalQuery with user-chosen bindings).
  bool mode_ok = false;
  for (const std::string& mode : lit.builtin->modes) {
    bool ok = true;
    for (size_t i = 0; i < mode.size() && i < args.size(); ++i) {
      if (mode[i] == 'b' && !args[i].has_value()) {
        ok = false;
        break;
      }
    }
    if (ok) {
      mode_ok = true;
      break;
    }
  }
  if (!mode_ok && !lit.negated) {
    // The schedule guarantees bindability in the common case, but deferred
    // pattern-variable bindings (pattern var matched against a target
    // variable) can leave arguments unbound at runtime; the builtin then
    // simply does not match.
    return util::OkStatus();
  }

  if (lit.negated) {
    bool any = false;
    LB_RETURN_IF_ERROR(lit.builtin->fn(args, [&](const Tuple&) { any = true; }));
    if (any) return util::OkStatus();
    return Step(ctx, oi + 1);
  }

  Status inner = util::OkStatus();
  LB_RETURN_IF_ERROR(lit.builtin->fn(args, [&](const Tuple& solution) {
    if (!inner.ok()) return;
    if (solution.size() != lit.cols.size()) {
      inner = util::Internal(util::StrCat("builtin '", lit.pred,
                                          "' emitted wrong arity"));
      return;
    }
    Trail trail;
    bool ok = true;
    for (size_t i = 0; i < lit.cols.size(); ++i) {
      if (!UnifyTermValue(lit.cols[i].term, solution[i], &ctx->rule->vars, &b,
                          &trail)) {
        ok = false;
        break;
      }
    }
    if (ok) inner = Step(ctx, oi + 1);
    UndoTrail(trail, &b);
  }));
  return inner;
}

Status Evaluator::EvalRuleOnce(
    CompiledRule* rule, int delta_pos, Relation* delta_rel,
    const std::function<Status(const ValueId*)>& emit,
    uint64_t* probe_tally, uint64_t* hit_tally) {
  ExecContext ctx;
  ctx.rule = rule;
  ctx.delta_pos = delta_pos;
  ctx.delta_rel = delta_rel;
  ctx.order = (delta_pos >= 0) ? &rule->order_delta.at(delta_pos)
                               : &rule->order_full;
  ctx.probe_tally = probe_tally;
  ctx.hit_tally = hit_tally;
  ctx.bindings.pool = pool_;
  ctx.bindings.EnsureSize(rule->vars.size());
  // Sized up front: frames hold references into it, so it must never
  // reallocate mid-evaluation. Inner vectors start empty (no heap).
  ctx.probe_scratch.resize(ctx.order->size());
  std::vector<std::pair<std::string, Tuple>> premises;
  if (provenance_ != nullptr && !rule->agg.has_value()) {
    ctx.premises = &premises;
  }
  // Only track the emitting rule when provenance needs it: these are
  // evaluator-wide members, and worker threads (which only ever run with
  // provenance disabled) must not write shared state.
  if (provenance_ != nullptr) {
    emitting_rule_ = rule;
    emitting_premises_ = ctx.premises;
  }

  if (rule->agg.has_value()) {
    // Aggregate over the *set* of body solutions (deduplicated on the full
    // variable assignment — standard bag-of-distinct-substitutions
    // semantics): count folds distinct input values; total/min/max fold the
    // input of every distinct solution, so two bureaus with equal weight
    // both contribute to a weighted threshold (§4.2.2).
    // Distinct solutions dedup on the interned binding vector (canonical
    // ids, so id-vector equality is assignment equality); groups and inputs
    // stay materialized so the fold and emission order match the seed
    // engine exactly.
    std::set<IdTuple> seen_solutions;
    std::map<Tuple, std::vector<Value>> by_group;
    ctx.on_solution = [&]() -> Status {
      Tuple group;
      group.reserve(rule->head_cols.size());
      for (const CompiledArg& col : rule->head_cols) {
        if (col.kind == CompiledArg::Kind::kVar &&
            col.slot == rule->agg_result_slot) {
          continue;  // computed below
        }
        Value v;
        if (!TryGroundHeadArg(col, rule->vars, ctx.bindings, &v)) {
          return util::UnsafeProgram("unbound aggregate group column");
        }
        group.push_back(std::move(v));
      }
      if (!ctx.bindings.IsBound(rule->agg_input_slot)) {
        return util::UnsafeProgram("unbound aggregate input");
      }
      if (!seen_solutions.insert(ctx.bindings.slots).second) {
        return util::OkStatus();
      }
      by_group[std::move(group)].push_back(
          ctx.bindings.Get(rule->agg_input_slot));
      return util::OkStatus();
    };
    LB_RETURN_IF_ERROR(Step(&ctx, 0));

    for (const auto& [group, inputs] : by_group) {
      Value result;
      switch (rule->agg->fn) {
        case Aggregate::Fn::kCount: {
          std::set<Value> distinct(inputs.begin(), inputs.end());
          result = Value::Int(static_cast<int64_t>(distinct.size()));
          break;
        }
        case Aggregate::Fn::kTotal: {
          bool all_int = true;
          double sum = 0;
          int64_t isum = 0;
          for (const Value& v : inputs) {
            if (!v.IsNumeric()) {
              return util::TypeError("total() over non-numeric values");
            }
            if (v.kind() == ValueKind::kInt) {
              isum += v.AsInt();
            } else {
              all_int = false;
            }
            sum += v.NumericValue();
          }
          result = all_int ? Value::Int(isum) : Value::Double(sum);
          break;
        }
        case Aggregate::Fn::kMin:
        case Aggregate::Fn::kMax: {
          result = inputs[0];
          for (const Value& v : inputs) {
            bool take = rule->agg->fn == Aggregate::Fn::kMin ? (v < result)
                                                             : (result < v);
            if (take) result = v;
          }
          break;
        }
      }
      // Rebuild the head tuple: group columns in order, result in place.
      IdTuple out;
      size_t gi = 0;
      for (const CompiledArg& col : rule->head_cols) {
        if (col.kind == CompiledArg::Kind::kVar &&
            col.slot == rule->agg_result_slot) {
          out.push_back(pool_->Intern(result));
        } else {
          out.push_back(pool_->Intern(group[gi++]));
        }
      }
      LB_RETURN_IF_ERROR(emit(out.data()));
    }
    return util::OkStatus();
  }

  IdTuple out(rule->head_cols.size());
  ctx.on_solution = [&]() -> Status {
    for (size_t i = 0; i < rule->head_cols.size(); ++i) {
      if (!TryGroundHeadArgId(rule->head_cols[i], rule->vars, ctx.bindings,
                              pool_, &out[i])) {
        return util::UnsafeProgram(
            util::StrCat("unbound head column in rule: ",
                         PrintRule(rule->source)));
      }
    }
    return emit(out.data());
  };
  return Step(&ctx, 0);
}

Evaluator::RuleCounters* Evaluator::CountersFor(const CompiledRule* rule) {
  auto [it, inserted] = rule_counters_.try_emplace(rule);
  if (inserted) {
    std::string labels =
        util::StrCat("head=\"", obs::LabelEscape(rule->head_pred),
                     "\",rule=\"", rule->id, "\"");
    it->second.evals = metrics_->GetCounter("lbtrust_rule_evals_total", labels);
    it->second.derived =
        metrics_->GetCounter("lbtrust_rule_tuples_derived_total", labels);
    it->second.probes =
        metrics_->GetCounter("lbtrust_rule_probes_total", labels);
    it->second.eval_us =
        metrics_->GetCounter("lbtrust_rule_eval_us_total", labels);
  }
  return &it->second;
}

void Evaluator::FoldRuleMetrics(const CompiledRule* rule, uint64_t derived,
                                const uint64_t* probe_tally,
                                const uint64_t* hit_tally,
                                uint64_t elapsed_us) {
  if (metrics_ == nullptr) return;
  RuleCounters* rc = CountersFor(rule);
  uint64_t probes_total = 0;
  for (size_t bi = 0; bi < rule->body.size(); ++bi) {
    if (probe_tally[bi] == 0 && hit_tally[bi] == 0) continue;
    const CompiledLiteral& lit = rule->body[bi];
    auto [it, inserted] = relation_counters_.try_emplace(lit.pred);
    if (inserted) {
      std::string labels =
          util::StrCat("relation=\"", obs::LabelEscape(lit.pred), "\"");
      it->second.probes =
          metrics_->GetCounter("lbtrust_relation_probes_total", labels);
      it->second.hits =
          metrics_->GetCounter("lbtrust_relation_probe_hits_total", labels);
    }
    it->second.probes->Add(probe_tally[bi]);
    it->second.hits->Add(hit_tally[bi]);
    probes_total += probe_tally[bi];
  }
  rc->evals->Add(1);
  rc->derived->Add(derived);
  rc->probes->Add(probes_total);
  rc->eval_us->Add(elapsed_us);
  tuples_derived_->Add(derived);
}

void Evaluator::RecordRoundDelta(const std::map<std::string, Relation>& delta) {
  if (metrics_ == nullptr) return;
  rounds_total_->Add(1);
  uint64_t rows = 0;
  for (const auto& [pred, rel] : delta) rows += rel.size();
  delta_rows_->Observe(rows);
}

Status Evaluator::RunRuleInto(CompiledRule* rule, int pos,
                              Relation* delta_rel, const Limits& limits,
                              size_t* total_tuples,
                              std::map<std::string, Relation>* next_delta,
                              std::map<std::string, Relation>* stratum_new) {
  const size_t arity = rule->head_cols.size();
  Relation* full = store_->GetOrCreate(rule->head_pred, arity);
  if (full->arity() != arity) {
    return util::TypeError(
        util::StrCat("arity mismatch inserting into '", rule->head_pred, "'"));
  }
  uint64_t* probe_tally = nullptr;
  uint64_t* hit_tally = nullptr;
  if (metrics_ != nullptr) {
    tally_probes_.assign(rule->body.size(), 0);
    tally_hits_.assign(rule->body.size(), 0);
    probe_tally = tally_probes_.data();
    hit_tally = tally_hits_.data();
  }
  const size_t tuples_before = *total_tuples;
  obs::ScopedSpan span(tracer_, "rule");
  const uint64_t eval_start_us =
      metrics_ != nullptr ? obs::Tracer::NowMicros() : 0;
  Relation* dnext = nullptr;
  Relation* snext = nullptr;
  Status result = EvalRuleOnce(
      rule, pos, delta_rel,
      [&](const ValueId* row) -> Status {
    if (provenance_ != nullptr && emitting_rule_ != nullptr) {
      Derivation d;
      d.kind = emitting_rule_->agg.has_value() ? Derivation::Kind::kAggregate
                                               : Derivation::Kind::kRule;
      d.rule_canon = PrintRule(emitting_rule_->source);
      if (emitting_premises_ != nullptr) d.premises = *emitting_premises_;
      provenance_->Record(rule->head_pred, MaterializeTuple(*pool_, row, arity),
                          std::move(d));
    }
    // One hash serves the dedup insert AND the delta appends. The deltas
    // themselves stay single-shard: rows derived here are appended by
    // this thread only, so sharding them buys nothing and costs N
    // vector-growth chains per round — only the parallel merge, whose
    // workers need disjoint shard ownership, pre-creates sharded deltas
    // (see RunRound; its topology check falls back to sequential replay
    // if it meets a delta created here).
    const uint64_t h = full->RowHash(row);
    if (full->InsertIdsHashed(row, h)) {
      ++*total_tuples;
      if (*total_tuples > limits.max_tuples) {
        return util::Internal(
            "fixpoint exceeded tuple budget (diverging program?)");
      }
      if (dnext == nullptr) {
        dnext = &next_delta->try_emplace(rule->head_pred, arity, pool_)
                     .first->second;
      }
      dnext->AppendUncheckedHashed(row, h);
      if (stratum_new != nullptr) {
        if (snext == nullptr) {
          snext = &stratum_new->try_emplace(rule->head_pred, arity, pool_)
                       .first->second;
        }
        snext->AppendUncheckedHashed(row, h);
      }
    }
    return util::OkStatus();
      },
      probe_tally, hit_tally);
  const uint64_t derived =
      static_cast<uint64_t>(*total_tuples - tuples_before);
  if (result.ok() && metrics_ != nullptr) {
    FoldRuleMetrics(rule, derived, probe_tally, hit_tally,
                    obs::Tracer::NowMicros() - eval_start_us);
  }
  if (span.enabled()) {
    span.set_args(util::StrCat("\"head\":\"", obs::LabelEscape(rule->head_pred),
                               "\",\"rule\":", rule->id,
                               ",\"delta_pos\":", pos,
                               ",\"derived\":", derived));
  }
  return result;
}

namespace {

/// Stable in-place dedup of an emission buffer (first occurrence wins, so
/// order — and therefore determinism — is preserved). Used as a memory
/// backstop when a chunk's raw emission count grows large: duplicates are
/// legal (the merge deduplicates anyway) and must not trip the tuple
/// budget, which counts distinct new tuples.
void CompactEmitBuffer(std::vector<ValueId>* rows,
                       std::vector<uint64_t>* hashes, size_t arity) {
  std::unordered_map<uint64_t, std::vector<size_t>> seen;  // hash -> kept idx
  size_t kept = 0;
  const size_t n = hashes->size();
  for (size_t r = 0; r < n; ++r) {
    const ValueId* row = rows->data() + r * arity;
    const uint64_t h = (*hashes)[r];
    std::vector<size_t>& bucket = seen[h];
    bool dup = false;
    for (size_t prev : bucket) {
      if (arity == 0 ||
          std::memcmp(rows->data() + prev * arity, row,
                      arity * sizeof(ValueId)) == 0) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    if (kept != r) {
      if (arity > 0) {
        std::memmove(rows->data() + kept * arity, row,
                     arity * sizeof(ValueId));
      }
      (*hashes)[kept] = h;
    }
    bucket.push_back(kept);
    ++kept;
  }
  hashes->resize(kept);
  rows->resize(kept * arity);
}

}  // namespace

Status Evaluator::EvalRuleChunk(CompiledRule* rule, int pos,
                                Relation* delta_rel, bool restricted,
                                size_t begin, size_t end, const Limits& limits,
                                Relation* full, EmitBuffer* buf) {
  ExecContext ctx;
  ctx.rule = rule;
  ctx.delta_pos = pos;
  ctx.delta_rel = delta_rel;
  ctx.order = (pos >= 0) ? &rule->order_delta.at(pos) : &rule->order_full;
  ctx.bindings.pool = pool_;
  ctx.bindings.EnsureSize(rule->vars.size());
  ctx.probe_scratch.resize(ctx.order->size());
  ctx.first_restricted = restricted;
  ctx.first_begin = begin;
  ctx.first_end = end;
  if (metrics_ != nullptr) {
    // Chunk-local tallies ride the emit buffer; the sequential merge sums
    // them, so concurrent workers never touch a shared counter.
    buf->probes.assign(rule->body.size(), 0);
    buf->hits.assign(rule->body.size(), 0);
    ctx.probe_tally = buf->probes.data();
    ctx.hit_tally = buf->hits.data();
  }
  const size_t arity = rule->head_cols.size();
  IdTuple out(arity);
  size_t budget_check_at = limits.max_tuples + 1;
  ctx.on_solution = [&]() -> Status {
    for (size_t i = 0; i < arity; ++i) {
      // parallel_safe guarantees kConst/kVar head columns, so this never
      // interns: constants were pre-interned, variables are id reads.
      if (!TryGroundHeadArgId(rule->head_cols[i], rule->vars, ctx.bindings,
                              pool_, &out[i])) {
        return util::UnsafeProgram(util::StrCat(
            "unbound head column in rule: ", PrintRule(rule->source)));
      }
    }
    const uint64_t h = full->RowHash(out.data());
    // Pre-filter against the frozen full relation: duplicate re-derivations
    // of already-stored tuples die here, in parallel, instead of occupying
    // the sequential merge.
    if (full->ContainsIdsHashed(out.data(), h)) return util::OkStatus();
    buf->rows.insert(buf->rows.end(), out.begin(), out.end());
    buf->hashes.push_back(h);
    // Memory backstop. The store is frozen, so a chunk always terminates,
    // but a dense join can emit the same new tuple many times before the
    // merge deduplicates; raw emissions must not trip the tuple budget
    // (which counts distinct inserts — the sequential engine happily
    // churns through duplicates). Compact with a stable dedup and fail
    // only if the chunk's DISTINCT emissions exceed the budget, which
    // the sequential path would also have failed. The doubling schedule
    // keeps compaction amortized O(1) per emission.
    if (buf->hashes.size() >= budget_check_at) {
      CompactEmitBuffer(&buf->rows, &buf->hashes, arity);
      if (buf->hashes.size() > limits.max_tuples) {
        return util::Internal(
            "fixpoint exceeded tuple budget (diverging program?)");
      }
      budget_check_at =
          std::max(limits.max_tuples + 1, buf->hashes.size() * 2);
    }
    return util::OkStatus();
  };
  if (metrics_ == nullptr) return Step(&ctx, 0);
  const uint64_t start_us = obs::Tracer::NowMicros();
  Status result = Step(&ctx, 0);
  buf->eval_us = obs::Tracer::NowMicros() - start_us;
  return result;
}

Status Evaluator::RunRound(const std::vector<RoundTask>& tasks,
                           const Limits& limits, size_t* total_tuples,
                           std::map<std::string, Relation>* next_delta,
                           std::map<std::string, Relation>* stratum_new) {
  bool parallel = threads_ > 1 && provenance_ == nullptr;
  if (parallel) {
    parallel = false;
    for (const RoundTask& t : tasks) {
      if (t.rule->parallel_safe) {
        parallel = true;
        break;
      }
    }
  }
  if (!parallel) {
    // Classic sequential round (threads == 1 path): in-round visibility,
    // immediate inserts — exactly the pre-parallel engine.
    for (const RoundTask& t : tasks) {
      LB_RETURN_IF_ERROR(RunRuleInto(t.rule, t.pos, t.delta_rel, limits,
                                     total_tuples, next_delta, stratum_new));
    }
    return util::OkStatus();
  }

  // --- Prep (sequential): resolve every relation a worker can reach, pre-
  // intern constants, pre-build the statically known probe-mask indexes,
  // then freeze. After this, phase A touches no mutable shared state.
  struct TaskPlan {
    bool safe = false;
    Relation* head = nullptr;
    Relation* first_rel = nullptr;  ///< partitionable leading relation
    size_t chunk_begin = 0;
    size_t chunk_end = 0;
    /// Pre-created delta outputs for the parallel merge (map mutation is
    /// not thread-safe, so lazily creating them from workers is not an
    /// option; entries that end the round empty are swept afterwards).
    Relation* dnext = nullptr;
    Relation* snext = nullptr;
  };
  std::vector<TaskPlan> plans(tasks.size());
  std::vector<Relation*> frozen;
  for (size_t ti = 0; ti < tasks.size(); ++ti) {
    const RoundTask& t = tasks[ti];
    if (!t.rule->parallel_safe) continue;
    TaskPlan& plan = plans[ti];
    CompiledRule* rule = t.rule;
    const size_t head_arity = rule->head_cols.size();
    Relation* head = store_->GetOrCreate(rule->head_pred, head_arity);
    if (head->arity() != head_arity) {
      return util::TypeError(util::StrCat("arity mismatch inserting into '",
                                          rule->head_pred, "'"));
    }
    plan.head = head;
    frozen.push_back(head);
    if (t.delta_rel != nullptr) frozen.push_back(t.delta_rel);
    for (size_t bi = 0; bi < rule->body.size(); ++bi) {
      const CompiledLiteral& lit = rule->body[bi];
      if (lit.kind != CompiledLiteral::Kind::kRelation &&
          lit.kind != CompiledLiteral::Kind::kNegation) {
        continue;
      }
      if (static_cast<int>(bi) == t.pos) continue;  // reads delta_rel
      Relation* rel = ResolveRelation(lit, lit.cols.size());
      if (rel->arity() != lit.cols.size()) {
        return util::TypeError(util::StrCat(
            "predicate '", lit.pred, "' used with ", lit.cols.size(),
            " columns, stored as ", rel->arity()));
      }
      frozen.push_back(rel);
    }
    for (const CompiledLiteral& lit : rule->body) {
      for (const CompiledArg& c : lit.cols) {
        if (c.kind == CompiledArg::Kind::kConst) ConstId(c, pool_);
      }
    }
    for (const CompiledArg& c : rule->head_cols) {
      if (c.kind == CompiledArg::Kind::kConst) ConstId(c, pool_);
    }
    const CompiledRule::OrderProbes& probes =
        t.pos >= 0 ? rule->probes_delta.at(t.pos) : rule->probes_full;
    for (const CompiledRule::OrderProbes::Need& need : probes.index_masks) {
      const CompiledLiteral& lit =
          rule->body[static_cast<size_t>(need.body_idx)];
      Relation* rel = need.body_idx == t.pos
                          ? t.delta_rel
                          : ResolveRelation(lit, lit.cols.size());
      rel->BuildIndex(need.mask);
    }
    if (probes.partition_first) {
      const std::vector<int>& order =
          t.pos >= 0 ? rule->order_delta.at(t.pos) : rule->order_full;
      const int first_idx = order[0];
      const CompiledLiteral& first_lit =
          rule->body[static_cast<size_t>(first_idx)];
      plan.first_rel = first_idx == t.pos
                           ? t.delta_rel
                           : ResolveRelation(first_lit, first_lit.cols.size());
    }
    plan.safe = true;
  }

  // --- Chunking: deterministic (depends only on row counts and the
  // configured thread count). Concatenating chunk outputs in order yields
  // the same emission stream regardless of which worker ran which chunk,
  // and regardless of chunk boundaries — so any threads >= 2 run of the
  // same state produces bit-identical stores.
  struct ChunkSpec {
    size_t task;
    bool restricted;
    size_t begin;
    size_t end;
  };
  constexpr size_t kMinChunkRows = 8;
  std::vector<ChunkSpec> chunks;
  for (size_t ti = 0; ti < tasks.size(); ++ti) {
    TaskPlan& plan = plans[ti];
    if (!plan.safe) continue;
    plan.chunk_begin = chunks.size();
    if (plan.first_rel != nullptr) {
      const size_t n = plan.first_rel->size();
      const size_t nchunks = std::min<size_t>(
          threads_, std::max<size_t>(1, n / kMinChunkRows));
      for (size_t c = 0; c < nchunks; ++c) {
        chunks.push_back({ti, true, n * c / nchunks, n * (c + 1) / nchunks});
      }
    } else {
      chunks.push_back({ti, false, 0, 0});
    }
    plan.chunk_end = chunks.size();
  }

  std::sort(frozen.begin(), frozen.end());
  frozen.erase(std::unique(frozen.begin(), frozen.end()), frozen.end());
  for (Relation* rel : frozen) rel->FreezeForRead();

  // --- Phase A: evaluate chunks against the frozen view.
  if (emit_bufs_.size() < chunks.size()) emit_bufs_.resize(chunks.size());
  std::vector<Status> chunk_status(chunks.size());
  auto run_chunk = [&](size_t ci) {
    const ChunkSpec& c = chunks[ci];
    const RoundTask& t = tasks[c.task];
    emit_bufs_[ci].clear();
    chunk_status[ci] =
        EvalRuleChunk(t.rule, t.pos, t.delta_rel, c.restricted, c.begin,
                      c.end, limits, plans[c.task].head, &emit_bufs_[ci]);
  };
  // Spawn only as many workers as this round can actually use (the
  // caller participates, so chunks - 1 saturates the round); a shared
  // slot keeps the threads alive across fixpoints.
  const unsigned want_workers = static_cast<unsigned>(std::min<size_t>(
      threads_ - 1, chunks.empty() ? 0 : chunks.size() - 1));
  if (want_workers > 0) {
    EvalWorkerPoolHandle& pool = *workers_slot_;
    if (pool == nullptr) {
      pool = EvalWorkerPoolHandle(new EvalWorkerPool(want_workers));
    } else {
      pool->EnsureWorkers(want_workers);
    }
    pool->Run(chunks.size(), run_chunk);
  } else {
    for (size_t ci = 0; ci < chunks.size(); ++ci) run_chunk(ci);
  }
  for (Relation* rel : frozen) rel->Thaw();

  // --- Merge: deterministic (task, chunk, row) replay. Consecutive
  // parallel-safe tasks form a *segment*; non-safe tasks evaluate inline
  // between segments, preserving the sequential in-round visibility
  // order. A segment whose relations are sharded merges in parallel —
  // every worker owns a disjoint set of shards and replays, in the same
  // (task, chunk, row) order, exactly the buffered rows whose hash routes
  // to its shards, so the per-shard insertion order (and therefore the
  // stored bytes) is identical to the sequential replay. Unsharded
  // segments run the classic single-thread replay.
  // Replays one safe task's buffers on the current thread (shards == 1
  // path; also the mixed-topology fallback).
  auto merge_task_sequential = [&](size_t ti) -> Status {
    const RoundTask& t = tasks[ti];
    const TaskPlan& plan = plans[ti];
    Relation* full = plan.head;
    const size_t arity = t.rule->head_cols.size();
    obs::ScopedSpan span(tracer_, "rule");
    uint64_t task_derived = 0;
    uint64_t task_eval_us = 0;
    if (metrics_ != nullptr) {
      tally_probes_.assign(t.rule->body.size(), 0);
      tally_hits_.assign(t.rule->body.size(), 0);
    }
    Relation* dnext = nullptr;
    Relation* snext = nullptr;
    for (size_t ci = plan.chunk_begin; ci < plan.chunk_end; ++ci) {
      LB_RETURN_IF_ERROR(chunk_status[ci]);
      const EmitBuffer& buf = emit_bufs_[ci];
      if (metrics_ != nullptr) {
        task_eval_us += buf.eval_us;
        for (size_t bi = 0; bi < buf.probes.size(); ++bi) {
          tally_probes_[bi] += buf.probes[bi];
          tally_hits_[bi] += buf.hits[bi];
        }
      }
      for (size_t r = 0; r < buf.hashes.size(); ++r) {
        const ValueId* row = buf.rows.data() + r * arity;
        const uint64_t h = buf.hashes[r];
        if (!full->InsertIdsHashed(row, h)) continue;
        ++*total_tuples;
        ++task_derived;
        if (*total_tuples > limits.max_tuples) {
          return util::Internal(
              "fixpoint exceeded tuple budget (diverging program?)");
        }
        if (dnext == nullptr) {
          // Classic single-shard delta: this replay is sequential, so the
          // rows will never be appended by disjoint shard owners, and a
          // tiny delta split N ways costs N vector-growth chains per
          // round. try_emplace forwards the ctor args, so no temporary
          // Relation is built when the entry already exists. (If a later,
          // larger segment of the same head goes parallel this round, its
          // topology check sees the single-shard delta and falls back.)
          dnext = &next_delta->try_emplace(t.rule->head_pred, arity, pool_)
                       .first->second;
        }
        dnext->AppendUncheckedHashed(row, h);
        if (stratum_new != nullptr) {
          if (snext == nullptr) {
            snext =
                &stratum_new->try_emplace(t.rule->head_pred, arity, pool_)
                     .first->second;
          }
          snext->AppendUncheckedHashed(row, h);
        }
      }
    }
    if (metrics_ != nullptr) {
      FoldRuleMetrics(t.rule, task_derived, tally_probes_.data(),
                      tally_hits_.data(), task_eval_us);
    }
    if (span.enabled()) {
      span.set_args(util::StrCat(
          "\"head\":\"", obs::LabelEscape(t.rule->head_pred),
          "\",\"rule\":", t.rule->id, ",\"delta_pos\":", t.pos,
          ",\"derived\":", task_derived));
    }
    return util::OkStatus();
  };

  // Merges safe tasks [lo, hi) with every worker replaying its own shards.
  auto merge_segment_parallel = [&](size_t lo, size_t hi,
                                    size_t nshards) -> Status {
    const auto merge_start = std::chrono::steady_clock::now();
    // Surface chunk failures in the order the sequential replay would
    // have hit them, before any of the segment lands in the store.
    for (size_t ti = lo; ti < hi; ++ti) {
      for (size_t ci = plans[ti].chunk_begin; ci < plans[ti].chunk_end; ++ci) {
        LB_RETURN_IF_ERROR(chunk_status[ci]);
      }
    }
    // Pre-create every task's delta outputs (std::map nodes are stable, so
    // later try_emplace calls in this round cannot move them).
    for (size_t ti = lo; ti < hi; ++ti) {
      TaskPlan& plan = plans[ti];
      const size_t arity = tasks[ti].rule->head_cols.size();
      plan.dnext = &next_delta
                        ->try_emplace(tasks[ti].rule->head_pred, arity,
                                      pool_, store_->default_shards())
                        .first->second;
      if (stratum_new != nullptr) {
        plan.snext = &stratum_new
                          ->try_emplace(tasks[ti].rule->head_pred, arity,
                                        pool_, store_->default_shards())
                          .first->second;
      }
      // A delta that predates this store's shard configuration would let
      // two workers route into the same shard — fall back to the
      // single-thread replay for the whole segment.
      if (plan.dnext->shard_count() != nshards ||
          (plan.snext != nullptr && plan.snext->shard_count() != nshards)) {
        if (metrics_ != nullptr) merge_sequential_->Add(1);
        for (size_t si = lo; si < hi; ++si) {
          LB_RETURN_IF_ERROR(merge_task_sequential(si));
        }
        return util::OkStatus();
      }
    }

    const size_t ntasks = hi - lo;
    // Per-(task, shard) derived counts and per-shard replay totals. Each
    // worker writes only its own shards' entries; the caller sums them
    // after the barrier, so the merge itself shares no counters.
    std::vector<uint64_t> derived(ntasks * nshards, 0);
    std::vector<uint64_t> shard_rows(nshards, 0);
    auto merge_shard = [&](size_t s) {
      uint64_t replayed = 0;
      for (size_t ti = lo; ti < hi; ++ti) {
        const TaskPlan& plan = plans[ti];
        Relation* full = plan.head;
        const size_t arity = tasks[ti].rule->head_cols.size();
        uint64_t task_derived = 0;
        for (size_t ci = plan.chunk_begin; ci < plan.chunk_end; ++ci) {
          const EmitBuffer& buf = emit_bufs_[ci];
          // Every worker scans the whole buffer and keeps only the rows
          // hashing into its shard: one AND-and-compare per row is cheaper
          // than materializing per-shard index lists during chunk
          // evaluation (which taxes rounds that end up replaying inline).
          for (size_t r = 0; r < buf.hashes.size(); ++r) {
            const uint64_t h = buf.hashes[r];
            if (full->ShardOfHash(h) != s) continue;
            const ValueId* row = buf.rows.data() + r * arity;
            ++replayed;
            if (!full->InsertIdsHashed(row, h)) continue;
            ++task_derived;
            plan.dnext->AppendUncheckedHashed(row, h);
            if (plan.snext != nullptr) {
              plan.snext->AppendUncheckedHashed(row, h);
            }
          }
        }
        derived[(ti - lo) * nshards + s] = task_derived;
      }
      shard_rows[s] = replayed;
    };
    EvalWorkerPoolHandle& pool = *workers_slot_;
    // Never fan the merge out wider than the physical cores: extra
    // workers would only time-slice the same CPUs while the caller
    // yields, and on a single-core host the whole segment replays inline
    // (still shard-by-shard, so counters and output are unchanged).
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned merge_workers = static_cast<unsigned>(
        std::min<size_t>({threads_ - 1, nshards - 1, hw - 1}));
    if (merge_workers > 0) {
      if (pool == nullptr) {
        pool = EvalWorkerPoolHandle(new EvalWorkerPool(merge_workers));
      } else {
        pool->EnsureWorkers(merge_workers);
      }
      pool->Run(nshards, merge_shard);
    } else {
      // Inline replay is one pass in (task, chunk, row) order, routing
      // each row as it goes: per-shard filtered scans would walk every
      // buffer nshards times on a single thread. Within any one shard
      // both schemes insert in the same first-occurrence order, so the
      // output and every counter are unchanged.
      for (size_t ti = lo; ti < hi; ++ti) {
        const TaskPlan& plan = plans[ti];
        Relation* full = plan.head;
        const size_t arity = tasks[ti].rule->head_cols.size();
        uint64_t* task_derived = &derived[(ti - lo) * nshards];
        for (size_t ci = plan.chunk_begin; ci < plan.chunk_end; ++ci) {
          const EmitBuffer& buf = emit_bufs_[ci];
          for (size_t r = 0; r < buf.hashes.size(); ++r) {
            const uint64_t h = buf.hashes[r];
            const size_t s = full->ShardOfHash(h);
            ++shard_rows[s];
            const ValueId* row = buf.rows.data() + r * arity;
            if (!full->InsertIdsHashed(row, h)) continue;
            ++task_derived[s];
            plan.dnext->AppendUncheckedHashed(row, h);
            if (plan.snext != nullptr) {
              plan.snext->AppendUncheckedHashed(row, h);
            }
          }
        }
      }
    }

    // Post-barrier accounting, in task order: budget totals (same
    // cumulative sums as the sequential replay, so the accept/reject
    // decision is identical — only granularity differs), metric folds and
    // spans.
    for (size_t ti = lo; ti < hi; ++ti) {
      const RoundTask& t = tasks[ti];
      obs::ScopedSpan span(tracer_, "rule");
      uint64_t task_derived = 0;
      for (size_t s = 0; s < nshards; ++s) {
        task_derived += derived[(ti - lo) * nshards + s];
      }
      *total_tuples += task_derived;
      if (*total_tuples > limits.max_tuples) {
        return util::Internal(
            "fixpoint exceeded tuple budget (diverging program?)");
      }
      if (metrics_ != nullptr) {
        tally_probes_.assign(t.rule->body.size(), 0);
        tally_hits_.assign(t.rule->body.size(), 0);
        uint64_t task_eval_us = 0;
        for (size_t ci = plans[ti].chunk_begin; ci < plans[ti].chunk_end;
             ++ci) {
          const EmitBuffer& buf = emit_bufs_[ci];
          task_eval_us += buf.eval_us;
          for (size_t bi = 0; bi < buf.probes.size(); ++bi) {
            tally_probes_[bi] += buf.probes[bi];
            tally_hits_[bi] += buf.hits[bi];
          }
        }
        FoldRuleMetrics(t.rule, task_derived, tally_probes_.data(),
                        tally_hits_.data(), task_eval_us);
      }
      if (span.enabled()) {
        span.set_args(util::StrCat(
            "\"head\":\"", obs::LabelEscape(t.rule->head_pred),
            "\",\"rule\":", t.rule->id, ",\"delta_pos\":", t.pos,
            ",\"derived\":", task_derived));
      }
    }
    if (metrics_ != nullptr) {
      merge_parallel_->Add(1);
      for (size_t s = 0; s < nshards; ++s) {
        if (shard_rows[s] > 0) MergeShardCounter(s)->Add(shard_rows[s]);
      }
      merge_latency_->Observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - merge_start)
              .count()));
    }
    return util::OkStatus();
  };
  bool any_parallel = false;

  Status merge_status = util::OkStatus();
  for (size_t ti = 0; ti < tasks.size() && merge_status.ok();) {
    if (!plans[ti].safe) {
      merge_status = RunRuleInto(tasks[ti].rule, tasks[ti].pos,
                                 tasks[ti].delta_rel, limits, total_tuples,
                                 next_delta, stratum_new);
      ++ti;
      continue;
    }
    size_t seg_end = ti;
    while (seg_end < tasks.size() && plans[seg_end].safe) ++seg_end;
    // Shard topology gate: every head in the segment must share one shard
    // count > 1, or the segment replays on this thread. Dispatching the
    // pool also costs a wake/claim round trip per segment, so segments
    // with few buffered rows (the chain-closure shape: many rounds of
    // tiny deltas) replay inline — the row count is a pure function of
    // the buffers, so the cutoff cannot change the output.
    constexpr size_t kParallelMergeMinRows = 256;
    size_t nshards = plans[ti].head->shard_count();
    size_t seg_rows = 0;
    for (size_t si = ti; si < seg_end; ++si) {
      if (plans[si].head->shard_count() != nshards) nshards = 1;
      for (size_t ci = plans[si].chunk_begin; ci < plans[si].chunk_end; ++ci) {
        seg_rows += emit_bufs_[ci].hashes.size();
      }
    }
    if (nshards > 1 && seg_rows >= kParallelMergeMinRows) {
      any_parallel = true;
      merge_status = merge_segment_parallel(ti, seg_end, nshards);
    } else {
      if (metrics_ != nullptr) merge_sequential_->Add(1);
      for (size_t si = ti; si < seg_end && merge_status.ok(); ++si) {
        merge_status = merge_task_sequential(si);
      }
    }
    ti = seg_end;
  }
  LB_RETURN_IF_ERROR(merge_status);

  // Sweep delta entries that ended the round empty: only the parallel
  // merge pre-creates entries before knowing whether a task derives
  // anything (the sequential paths create deltas on first insert), so
  // rounds that replayed entirely inline skip the map walk. An empty
  // entry would cost the caller an extra no-op round (and skew round
  // metrics versus the sequential engine).
  if (any_parallel) {
    for (auto it = next_delta->begin(); it != next_delta->end();) {
      it = it->second.empty() ? next_delta->erase(it) : std::next(it);
    }
    if (stratum_new != nullptr) {
      for (auto it = stratum_new->begin(); it != stratum_new->end();) {
        it = it->second.empty() ? stratum_new->erase(it) : std::next(it);
      }
    }
  }
  return util::OkStatus();
}

Status Evaluator::Run(const std::vector<CompiledRule*>& rules,
                      const Stratification& strat, const Limits& limits,
                      bool naive) {
  size_t total_tuples = 0;

  for (size_t level = 0; level < strat.strata.size(); ++level) {
    std::vector<CompiledRule*> stratum_rules;
    for (CompiledRule* r : rules) {
      auto it = strat.level.find(r->head_pred);
      if (it != strat.level.end() &&
          it->second == static_cast<int>(level)) {
        stratum_rules.push_back(r);
      }
    }
    if (stratum_rules.empty()) continue;
    obs::ScopedSpan stratum_span(tracer_, "stratum");

    // Delta per in-stratum predicate.
    std::map<std::string, Relation> delta;
    auto in_stratum = [&](const std::string& pred) {
      auto it = strat.level.find(pred);
      return it != strat.level.end() &&
             it->second == static_cast<int>(level);
    };

    // Round 0: naive evaluation of every rule in the stratum. The naive
    // ablation stays on the classic sequential path throughout.
    if (naive) {
      for (CompiledRule* r : stratum_rules) {
        LB_RETURN_IF_ERROR(
            RunRuleInto(r, -1, nullptr, limits, &total_tuples, &delta,
                        /*stratum_new=*/nullptr));
      }
    } else {
      std::vector<RoundTask> tasks;
      tasks.reserve(stratum_rules.size());
      for (CompiledRule* r : stratum_rules) {
        tasks.push_back(RoundTask{r, -1, nullptr});
      }
      LB_RETURN_IF_ERROR(RunRound(tasks, limits, &total_tuples, &delta,
                                  /*stratum_new=*/nullptr));
    }
    RecordRoundDelta(delta);

    // Recursive rounds.
    size_t rounds = 0;
    while (!delta.empty()) {
      if (++rounds > limits.max_rounds) {
        return util::Internal("fixpoint exceeded round budget");
      }
      std::map<std::string, Relation> next_delta;
      if (naive) {
        for (CompiledRule* r : stratum_rules) {
          if (r->agg.has_value()) continue;  // agg bodies are lower strata
          bool recursive = false;
          for (int pos : r->relation_positions) {
            if (in_stratum(r->body[static_cast<size_t>(pos)].pred)) {
              recursive = true;
              break;
            }
          }
          if (!recursive) continue;
          LB_RETURN_IF_ERROR(
              RunRuleInto(r, -1, nullptr, limits, &total_tuples, &next_delta,
                          /*stratum_new=*/nullptr));
        }
      } else {
        std::vector<RoundTask> tasks;
        for (CompiledRule* r : stratum_rules) {
          if (r->agg.has_value()) continue;  // agg bodies are lower strata
          for (int pos : r->relation_positions) {
            const std::string& pred = r->body[static_cast<size_t>(pos)].pred;
            if (!in_stratum(pred)) continue;
            auto dit = delta.find(pred);
            if (dit == delta.end() || dit->second.empty()) continue;
            tasks.push_back(RoundTask{r, pos, &dit->second});
          }
        }
        LB_RETURN_IF_ERROR(RunRound(tasks, limits, &total_tuples, &next_delta,
                                    /*stratum_new=*/nullptr));
      }
      RecordRoundDelta(next_delta);
      delta = std::move(next_delta);
    }
    if (stratum_span.enabled()) {
      stratum_span.set_args(util::StrCat("\"level\":", level,
                                         ",\"rules\":", stratum_rules.size(),
                                         ",\"rounds\":", rounds));
    }
  }
  return util::OkStatus();
}

Status Evaluator::RunIncremental(const std::vector<CompiledRule*>& rules,
                                 const Stratification& strat,
                                 const Limits& limits,
                                 std::map<std::string, Relation> seed) {
  size_t total_tuples = 0;
  // Predicates changed so far: the EDB seed plus everything derived by
  // lower strata during this call. Entries drive the round-0 delta joins
  // of each stratum exactly once.
  std::map<std::string, Relation>& accumulated = seed;

  for (size_t level = 0; level < strat.strata.size(); ++level) {
    std::vector<CompiledRule*> stratum_rules;
    for (CompiledRule* r : rules) {
      auto it = strat.level.find(r->head_pred);
      if (it != strat.level.end() &&
          it->second == static_cast<int>(level)) {
        stratum_rules.push_back(r);
      }
    }
    if (stratum_rules.empty()) continue;

    auto in_stratum = [&](const std::string& pred) {
      auto it = strat.level.find(pred);
      return it != strat.level.end() &&
             it->second == static_cast<int>(level);
    };
    obs::ScopedSpan stratum_span(tracer_, "stratum");

    // Everything this stratum derives, for the benefit of higher strata.
    std::map<std::string, Relation> stratum_new;

    // Round 0: drive every rule once per changed body relation. Non-delta
    // positions read the full (already extended) store, so combinations of
    // several changed relations are covered; set semantics dedups the
    // overlap. Rules with no changed body relation are skipped — their
    // consequences are already in the store. Aggregate rules never reach
    // this path (Workspace::DeltaFixpointEligible falls back to a full
    // rebuild when a delta can feed an aggregate).
    std::map<std::string, Relation> delta;
    {
      std::vector<RoundTask> tasks;
      for (CompiledRule* r : stratum_rules) {
        if (r->agg.has_value()) continue;
        for (int pos : r->relation_positions) {
          const std::string& pred = r->body[static_cast<size_t>(pos)].pred;
          auto ait = accumulated.find(pred);
          if (ait == accumulated.end() || ait->second.empty()) continue;
          tasks.push_back(RoundTask{r, pos, &ait->second});
        }
      }
      LB_RETURN_IF_ERROR(
          RunRound(tasks, limits, &total_tuples, &delta, &stratum_new));
    }
    RecordRoundDelta(delta);

    // In-stratum recursion: identical to Run()'s semi-naive rounds.
    size_t rounds = 0;
    while (!delta.empty()) {
      if (++rounds > limits.max_rounds) {
        return util::Internal("fixpoint exceeded round budget");
      }
      std::map<std::string, Relation> next_delta;
      std::vector<RoundTask> tasks;
      for (CompiledRule* r : stratum_rules) {
        if (r->agg.has_value()) continue;
        for (int pos : r->relation_positions) {
          const std::string& pred = r->body[static_cast<size_t>(pos)].pred;
          if (!in_stratum(pred)) continue;
          auto dit = delta.find(pred);
          if (dit == delta.end() || dit->second.empty()) continue;
          tasks.push_back(RoundTask{r, pos, &dit->second});
        }
      }
      LB_RETURN_IF_ERROR(RunRound(tasks, limits, &total_tuples, &next_delta,
                                  &stratum_new));
      RecordRoundDelta(next_delta);
      delta = std::move(next_delta);
    }
    if (stratum_span.enabled()) {
      stratum_span.set_args(util::StrCat("\"level\":", level,
                                         ",\"rules\":", stratum_rules.size(),
                                         ",\"rounds\":", rounds,
                                         ",\"incremental\":true"));
    }

    // Stratum-new rows are disjoint from the rows already accumulated (they
    // were new in the full store, which contains everything accumulated).
    for (auto& [pred, rel] : stratum_new) {
      auto [it, fresh] = accumulated.try_emplace(pred, rel.arity(), pool_);
      (void)fresh;
      for (uint32_t id : rel.Rows()) {
        it->second.AppendUnchecked(rel.RowIds(id));
      }
    }
  }
  return util::OkStatus();
}

Status Evaluator::EvalQuery(CompiledRule* rule,
                            const std::function<void(const Bindings&)>& cb) {
  return EvalQueryUntil(rule, [&](const Bindings& b) {
    cb(b);
    return true;
  });
}

Status Evaluator::EvalQueryUntil(CompiledRule* rule,
                                 const std::function<bool(const Bindings&)>& cb) {
  ExecContext ctx;
  ctx.rule = rule;
  ctx.delta_pos = -1;
  ctx.delta_rel = nullptr;
  ctx.order = &rule->order_full;
  ctx.bindings.pool = pool_;
  ctx.bindings.EnsureSize(rule->vars.size());
  ctx.probe_scratch.resize(ctx.order->size());
  bool stopped = false;
  ctx.on_solution = [&]() -> Status {
    if (!cb(ctx.bindings)) {
      stopped = true;
      // Sentinel error: unwinds the enumeration, stripped below.
      return util::Internal("enumeration stopped");
    }
    return util::OkStatus();
  };
  Status st = Step(&ctx, 0);
  if (stopped) return util::OkStatus();
  return st;
}

}  // namespace lbtrust::datalog
