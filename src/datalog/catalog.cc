#include "datalog/catalog.h"

#include "util/strings.h"

namespace lbtrust::datalog {

using util::Status;

Status Catalog::Declare(const std::string& name, size_t arity,
                        bool partitioned) {
  auto it = preds_.find(name);
  if (it == preds_.end()) {
    PredicateInfo info;
    info.name = name;
    info.arity = arity;
    info.partitioned = partitioned;
    info.arg_types.assign(arity, "");
    preds_.emplace(name, std::move(info));
    return util::OkStatus();
  }
  PredicateInfo& info = it->second;
  if (info.arity != arity) {
    return util::TypeError(util::StrCat("predicate '", name,
                                        "' redeclared with arity ", arity,
                                        " (was ", info.arity, ")"));
  }
  // A predicate first seen unpartitioned may later be declared partitioned
  // (the declaration usually follows first use in loaded programs).
  info.partitioned = info.partitioned || partitioned;
  return util::OkStatus();
}

Status Catalog::DeclareEntityType(const std::string& name) {
  LB_RETURN_IF_ERROR(Declare(name, 1));
  preds_[name].is_entity_type = true;
  return util::OkStatus();
}

Status Catalog::SetArgTypes(const std::string& name,
                            std::vector<std::string> types) {
  auto it = preds_.find(name);
  if (it == preds_.end()) {
    LB_RETURN_IF_ERROR(Declare(name, types.size()));
    it = preds_.find(name);
  }
  if (it->second.arity != types.size()) {
    return util::TypeError(util::StrCat("type declaration for '", name,
                                        "' has ", types.size(),
                                        " columns, predicate has ",
                                        it->second.arity));
  }
  it->second.arg_types = std::move(types);
  return util::OkStatus();
}

void Catalog::MarkDerived(const std::string& name) {
  auto it = preds_.find(name);
  if (it != preds_.end()) it->second.derived = true;
}

void Catalog::MarkBuiltin(const std::string& name, size_t arity) {
  auto [it, inserted] = preds_.try_emplace(name);
  if (inserted) {
    it->second.name = name;
    it->second.arity = arity;
    it->second.arg_types.assign(arity, "");
  }
  it->second.builtin = true;
}

bool Catalog::Exists(const std::string& name) const {
  return preds_.count(name) > 0;
}

const PredicateInfo* Catalog::Find(const std::string& name) const {
  auto it = preds_.find(name);
  return it == preds_.end() ? nullptr : &it->second;
}

}  // namespace lbtrust::datalog
