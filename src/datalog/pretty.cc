#include "datalog/pretty.h"

#include "util/strings.h"

namespace lbtrust::datalog {

std::string PrintTerm(const Term& t) {
  switch (t.kind) {
    case Term::Kind::kVariable:
      return t.var;
    case Term::Kind::kConstant:
      return t.value.ToString();
    case Term::Kind::kMe:
      return "me";
    case Term::Kind::kExpr:
      return util::StrCat("(", PrintTerm(*t.lhs), t.op, PrintTerm(*t.rhs),
                          ")");
    case Term::Kind::kPartRef:
      return util::StrCat(t.part_pred, "[", PrintTerm(*t.part_key), "]");
    case Term::Kind::kStarVar:
      return util::StrCat(t.var, "*");
  }
  return "?";
}

namespace {
bool IsComparisonName(const std::string& name) {
  return name == "=" || name == "!=" || name == "<" || name == "<=" ||
         name == ">" || name == ">=";
}
}  // namespace

std::string PrintAtom(const Atom& a) {
  if (a.meta_atom) {
    return a.star ? util::StrCat(a.predicate, "*") : a.predicate;
  }
  // Comparisons print infix so canonical forms re-parse.
  if (IsComparisonName(a.predicate) && a.args.size() == 2 && !a.partition) {
    return util::StrCat(PrintTerm(a.args[0]), " ", a.predicate, " ",
                        PrintTerm(a.args[1]));
  }
  std::string out = a.predicate;
  if (a.partition) {
    out += util::StrCat("[", PrintTerm(*a.partition), "]");
  }
  out.push_back('(');
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += PrintTerm(a.args[i]);
  }
  out.push_back(')');
  return out;
}

std::string PrintLiteral(const Literal& l) {
  return l.negated ? util::StrCat("!", PrintAtom(l.atom)) : PrintAtom(l.atom);
}

namespace {
const char* AggName(Aggregate::Fn fn) {
  switch (fn) {
    case Aggregate::Fn::kCount:
      return "count";
    case Aggregate::Fn::kTotal:
      return "total";
    case Aggregate::Fn::kMin:
      return "min";
    case Aggregate::Fn::kMax:
      return "max";
  }
  return "?";
}
}  // namespace

std::string PrintRule(const Rule& r) {
  std::string out;
  for (size_t i = 0; i < r.heads.size(); ++i) {
    if (i > 0) out += ", ";
    out += PrintAtom(r.heads[i]);
  }
  if (!r.body.empty() || r.aggregate.has_value()) {
    out += " <- ";
    if (r.aggregate.has_value()) {
      out += util::StrCat("agg<<", r.aggregate->result_var, " = ",
                          AggName(r.aggregate->fn), "(", r.aggregate->input_var,
                          ")>> ");
    }
    for (size_t i = 0; i < r.body.size(); ++i) {
      if (i > 0) out += ", ";
      out += PrintLiteral(r.body[i]);
    }
  }
  out.push_back('.');
  return out;
}

std::string PrintConstraint(const Constraint& c) {
  std::string out;
  for (size_t i = 0; i < c.lhs.size(); ++i) {
    if (i > 0) out += ", ";
    out += PrintLiteral(c.lhs[i]);
  }
  out += " -> ";
  for (size_t alt = 0; alt < c.rhs_dnf.size(); ++alt) {
    if (alt > 0) out += "; ";
    for (size_t i = 0; i < c.rhs_dnf[alt].size(); ++i) {
      if (i > 0) out += ", ";
      out += PrintLiteral(c.rhs_dnf[alt][i]);
    }
  }
  out.push_back('.');
  return out;
}

}  // namespace lbtrust::datalog
