#ifndef LBTRUST_DATALOG_LEXER_H_
#define LBTRUST_DATALOG_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace lbtrust::datalog {

enum class TokenKind {
  kIdent,       ///< lowercase-initial identifier; may contain ':' segments
  kVar,         ///< uppercase-initial identifier or '_'-prefixed variable
  kUnderscore,  ///< solitary '_' (anonymous variable)
  kInt,
  kFloat,
  kString,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kQuoteOpen,   ///< [|
  kQuoteClose,  ///< |]
  kComma,
  kSemi,
  kBang,
  kDot,
  kArrowLeft,   ///< <-
  kArrowRight,  ///< ->
  kColonDash,   ///< :- (SeNDlog surface syntax)
  kAggOpen,     ///< <<
  kAggClose,    ///< >>
  kEq,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kColon,
  kAt,          ///< @ (SeNDlog export heads)
  kCaret,       ///< ^ (D1LP delegation depth)
  kEnd,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      ///< identifier / variable / string payload
  int64_t int_value = 0;
  double float_value = 0;
  int line = 1;
  int column = 1;
};

/// Tokenizes a whole program. `//`-to-EOL and `/* */` comments are skipped.
/// Identifier tokens absorb ':' when immediately followed by an identifier
/// character, so `message:id` and `rsa:3:c1ebab5d` lex as single symbols
/// while a clause label `exp1: ...` (colon then space) lexes as
/// kIdent kColon.
util::Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_LEXER_H_
