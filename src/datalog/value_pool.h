#ifndef LBTRUST_DATALOG_VALUE_POOL_H_
#define LBTRUST_DATALOG_VALUE_POOL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "datalog/value.h"

namespace lbtrust::datalog {

/// A trivially-copyable 8-byte handle for an interned Value. The engine's
/// storage and evaluation layers operate entirely on ids; full `Value`s are
/// materialized only at the API boundary (builtins, arithmetic, aggregates,
/// dump, wire).
///
/// Layout: the top byte is a tag, the low 56 bits are the payload.
///
///   tag  payload
///   0    0                nil (a default-constructed id; also "unbound")
///   1    0                bool false
///   2    0                bool true
///   3    56-bit int       kInt whose value fits 56-bit two's complement
///   4    double bits>>8   kDouble whose IEEE bit pattern has a zero low
///                         byte (covers ints-as-doubles and short decimals)
///   5..  pool index       kInt / kDouble (rare wide cases), kString,
///                         kSymbol, kCode, kPart
///
/// Within one ValuePool, interning is canonical: two ids are bit-equal iff
/// the Values they denote compare equal (code and part values compare by
/// canonical printed form, exactly as `Value::operator==`). Ids from
/// different pools must never be mixed; `Relation` enforces this by
/// interning at its boundary API.
class ValueId {
 public:
  constexpr ValueId() = default;

  enum Tag : uint8_t {
    kTagNil = 0,
    kTagFalse = 1,
    kTagTrue = 2,
    kTagInlineInt = 3,
    kTagInlineDouble = 4,
    kTagPooledInt = 5,
    kTagPooledDouble = 6,
    kTagString = 7,
    kTagSymbol = 8,
    kTagCode = 9,
    kTagPart = 10,
  };

  static constexpr uint64_t kPayloadBits = 56;
  static constexpr uint64_t kPayloadMask = (uint64_t{1} << kPayloadBits) - 1;

  static constexpr ValueId Nil() { return ValueId(); }
  static constexpr ValueId Bool(bool v) {
    return FromBits(uint64_t{v ? kTagTrue : kTagFalse} << kPayloadBits);
  }
  /// True iff `v` survives the 56-bit round trip (sign-extended). The
  /// left shift happens in unsigned arithmetic (shifting a negative value
  /// is UB); the arithmetic right shift restores the sign.
  static constexpr bool IntFitsInline(int64_t v) {
    return (static_cast<int64_t>(static_cast<uint64_t>(v)
                                 << (64 - kPayloadBits)) >>
            (64 - kPayloadBits)) == v;
  }
  static constexpr ValueId InlineInt(int64_t v) {
    return FromBits((uint64_t{kTagInlineInt} << kPayloadBits) |
                    (static_cast<uint64_t>(v) & kPayloadMask));
  }
  static constexpr ValueId FromBits(uint64_t bits) {
    ValueId id;
    id.bits_ = bits;
    return id;
  }
  static constexpr ValueId Pooled(Tag tag, uint32_t index) {
    return FromBits((uint64_t{tag} << kPayloadBits) | index);
  }

  constexpr uint64_t bits() const { return bits_; }
  constexpr Tag tag() const {
    return static_cast<Tag>(bits_ >> kPayloadBits);
  }
  constexpr uint64_t payload() const { return bits_ & kPayloadMask; }
  constexpr bool is_nil() const { return bits_ == 0; }
  constexpr bool is_pooled() const { return tag() >= kTagPooledInt; }

  ValueKind kind() const {
    switch (tag()) {
      case kTagNil: return ValueKind::kNil;
      case kTagFalse:
      case kTagTrue: return ValueKind::kBool;
      case kTagInlineInt:
      case kTagPooledInt: return ValueKind::kInt;
      case kTagInlineDouble:
      case kTagPooledDouble: return ValueKind::kDouble;
      case kTagString: return ValueKind::kString;
      case kTagSymbol: return ValueKind::kSymbol;
      case kTagCode: return ValueKind::kCode;
      case kTagPart: return ValueKind::kPart;
    }
    return ValueKind::kNil;
  }

  /// splitmix64 finalizer over the raw bits: uniformly spreads the tag and
  /// small inline payloads that dominate real workloads.
  uint64_t Hash() const {
    uint64_t x = bits_ + 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  friend constexpr bool operator==(ValueId a, ValueId b) {
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator!=(ValueId a, ValueId b) {
    return a.bits_ != b.bits_;
  }
  /// Bit order — NOT the Value total order; use it only for canonical
  /// container keys (dedup), never for user-visible ordering.
  friend constexpr bool operator<(ValueId a, ValueId b) {
    return a.bits_ < b.bits_;
  }

 private:
  uint64_t bits_ = 0;
};

static_assert(sizeof(ValueId) == 8, "ValueId must stay an 8-byte handle");

/// A row of interned values (the engine-internal mirror of `Tuple`).
using IdTuple = std::vector<ValueId>;

/// Deduplicating value store. One pool per Workspace (plus a process-wide
/// default for standalone Relations).
///
/// Threading: `Intern` mutates and is single-writer; the const reads
/// (`Find`, `Get`, `generation`, `pooled_count`) are safe from any number
/// of concurrent threads AS LONG AS no thread is interning. The parallel
/// evaluator relies on exactly this split: worker threads evaluate
/// parallel-safe rules that operate purely on ids (they never call Intern
/// — constants are interned during round prep, and pattern/builtin rules
/// that could intern run on the merge thread), so during a parallel phase
/// the pool is read-only by construction.
class ValuePool {
 public:
  ValuePool();
  ValuePool(const ValuePool&) = delete;
  ValuePool& operator=(const ValuePool&) = delete;

  /// Returns the canonical id for `v`, adding a pool entry if needed.
  ValueId Intern(const Value& v);

  /// Lookup without insertion: false when `v` has no id yet (then no stored
  /// row can contain it). Inline-representable values always succeed.
  bool Find(const Value& v, ValueId* out) const;

  /// Materializes the Value an id denotes. Inline kinds are rebuilt on the
  /// fly; pooled kinds return a copy of the stored entry (cheap:
  /// shared-pointer payloads).
  Value Get(ValueId id) const;

  /// Number of pooled (non-inline) entries; exposed for tests and stats.
  size_t pooled_count() const { return values_.size(); }

  /// Process-unique pool identity (never reused, unlike addresses), for
  /// caches that must not validate a stale entry against a new pool that
  /// happens to live at the old pool's address.
  uint64_t generation() const { return generation_; }

  /// Process-wide pool used by relations constructed without an explicit
  /// pool (standalone tests, tools).
  static ValuePool* Default();

 private:
  ValueId InternSlow(const Value& v, ValueId::Tag tag);

  uint64_t generation_;
  std::vector<Value> values_;
  /// Content-hash buckets (Value::Hash -> pool indices); collisions are
  /// resolved with full Value equality.
  std::unordered_map<uint64_t, std::vector<uint32_t>> dedup_;
};

/// Interns every element of a boundary tuple.
IdTuple InternTuple(ValuePool* pool, const Tuple& t);
/// Materializes a full tuple from a row of ids.
Tuple MaterializeTuple(const ValuePool& pool, const ValueId* row, size_t n);

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_VALUE_POOL_H_
