#include "datalog/provenance.h"

#include <algorithm>

#include "util/strings.h"

namespace lbtrust::datalog {

size_t ProvenanceStore::KeyHash::operator()(
    const std::pair<std::string, Tuple>& key) const {
  return util::HashCombine(util::Fnv1a(key.first),
                           TupleHash()(key.second));
}

void ProvenanceStore::Record(const std::string& predicate, const Tuple& tuple,
                             Derivation derivation) {
  table_.try_emplace({predicate, tuple}, std::move(derivation));
}

const Derivation* ProvenanceStore::Find(const std::string& predicate,
                                        const Tuple& tuple) const {
  auto it = table_.find({predicate, tuple});
  return it == table_.end() ? nullptr : &it->second;
}

void ProvenanceStore::ExplainInto(
    const std::string& predicate, const Tuple& tuple,
    const std::string& indent,
    std::vector<std::pair<std::string, Tuple>>* path,
    std::string* out) const {
  *out += util::StrCat(predicate, TupleToString(tuple));
  const Derivation* d = Find(predicate, tuple);
  if (d == nullptr) {
    *out += "   [unknown]\n";
    return;
  }
  switch (d->kind) {
    case Derivation::Kind::kBase:
      *out += "   [base]\n";
      return;
    case Derivation::Kind::kAggregate:
      *out += util::StrCat("\n", indent, "`- aggregate: ", d->rule_canon,
                           "\n");
      return;
    case Derivation::Kind::kActivated:
      *out += util::StrCat("\n", indent, "`- activated: ", d->rule_canon,
                           "\n");
      break;
    case Derivation::Kind::kRule:
      *out += util::StrCat("\n", indent, "`- rule: ", d->rule_canon, "\n");
      break;
  }
  auto key = std::make_pair(predicate, tuple);
  if (std::find(path->begin(), path->end(), key) != path->end()) {
    *out += util::StrCat(indent, "   ...\n");
    return;
  }
  path->push_back(key);
  for (const auto& [pred, premise] : d->premises) {
    *out += util::StrCat(indent, "   `- ");
    ExplainInto(pred, premise, indent + "   ", path, out);
  }
  path->pop_back();
}

std::string ProvenanceStore::Explain(const std::string& predicate,
                                     const Tuple& tuple) const {
  std::string out;
  std::vector<std::pair<std::string, Tuple>> path;
  ExplainInto(predicate, tuple, "", &path, &out);
  return out;
}

}  // namespace lbtrust::datalog
