#ifndef LBTRUST_DATALOG_AST_H_
#define LBTRUST_DATALOG_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "datalog/value.h"

namespace lbtrust::datalog {

/// A term: variable, constant, `me`, arithmetic expression, partition
/// reference `pred[key]`, or a Kleene-star variable `T*` (legal only inside
/// quoted code patterns, where it matches the remaining argument list).
struct Term {
  enum class Kind {
    kVariable,
    kConstant,
    kMe,        ///< the local-principal keyword; resolved at install time
    kExpr,      ///< binary arithmetic over subterms
    kPartRef,   ///< pred[key] appearing as an argument (placement rules)
    kStarVar,   ///< T* pattern (quoted code only)
  };

  Kind kind = Kind::kConstant;
  std::string var;    ///< kVariable / kStarVar: name ("_"-vars get unique names)
  Value value;        ///< kConstant
  char op = 0;        ///< kExpr: '+', '-', '*', '/'
  std::shared_ptr<Term> lhs, rhs;       ///< kExpr operands
  std::string part_pred;                ///< kPartRef: predicate name
  std::shared_ptr<Term> part_key;       ///< kPartRef: key term

  static Term Variable(std::string name);
  static Term Constant(Value v);
  static Term Me();
  static Term Expr(char op, Term lhs, Term rhs);
  static Term PartRef(std::string pred, Term key);
  static Term StarVar(std::string name);

  bool is_variable() const { return kind == Kind::kVariable; }
  bool is_constant() const { return kind == Kind::kConstant; }
};

/// An atom. Besides ordinary `pred(args)` atoms this models the quoted-code
/// pattern forms of §3.3: a meta-variable functor (`P(T*)` where P ranges
/// over predicate names), a whole-atom meta-variable (`A`), and the
/// Kleene-starred atom (`A*`, matching the rest of a rule body).
struct Atom {
  std::string predicate;              ///< functor name, or meta-var name
  bool meta_functor = false;          ///< predicate is an (uppercase) meta-var
  bool meta_atom = false;             ///< whole atom is a meta-var (e.g. `A`)
  bool star = false;                  ///< `A*` (implies meta_atom)
  std::shared_ptr<Term> partition;    ///< p[X](...) partition key, or null
  std::vector<Term> args;

  /// Total column count of the underlying relation (partition key first).
  size_t Arity() const { return args.size() + (partition ? 1 : 0); }
};

/// A possibly negated atom in a rule body.
struct Literal {
  Atom atom;
  bool negated = false;
};

/// Aggregation spec: `agg<<N = fn(V)>> body` (§4.2.2).
struct Aggregate {
  enum class Fn { kCount, kTotal, kMin, kMax };
  Fn fn = Fn::kCount;
  std::string result_var;
  std::string input_var;
};

/// A rule `heads <- body.`; facts are rules with an empty body. Multi-atom
/// heads are kept for quoted code fidelity and split at install time.
class Rule {
 public:
  std::string label;                  ///< optional "exp1:"-style label
  std::vector<Atom> heads;
  std::vector<Literal> body;
  std::optional<Aggregate> aggregate;

  bool IsFact() const { return body.empty() && !aggregate.has_value(); }
};

/// A schema constraint `lhs -> rhs.` retained in source shape; compilation
/// into aux + fail rules happens in the workspace (see analysis.h).
struct Constraint {
  std::string label;
  std::vector<Literal> lhs;           ///< conjunction (DNF alternatives split)
  /// RHS in DNF: violation when lhs holds and no alternative holds.
  std::vector<std::vector<Literal>> rhs_dnf;
  std::string display;                ///< original text for diagnostics
};

/// One parsed top-level clause.
struct ParsedClause {
  enum class Kind { kRule, kConstraint };
  Kind kind = Kind::kRule;
  /// kRule: one or more rules (DNF of the body, one per head atom).
  std::vector<Rule> rules;
  /// kConstraint: one or more constraints (DNF of the LHS).
  std::vector<Constraint> constraints;
};

/// Deep structural equality (variable names significant).
bool TermEquals(const Term& a, const Term& b);
bool AtomEquals(const Atom& a, const Atom& b);
bool RuleEquals(const Rule& a, const Rule& b);

/// Deep copy helpers (AST nodes hold shared subterms; these clone).
Term CloneTerm(const Term& t);
Atom CloneAtom(const Atom& a);
Rule CloneRule(const Rule& r);

/// Collects variable names in order of first occurrence. Variables inside
/// quoted-code constants are NOT collected (they belong to the inner scope).
void CollectTermVars(const Term& t, std::vector<std::string>* out);
void CollectAtomVars(const Atom& a, std::vector<std::string>* out);

/// Replaces every `me` term (including inside quoted code constants) with
/// the symbol constant `principal`. Used at rule-install time (§4.1).
Term ResolveMeTerm(const Term& t, const std::string& principal);
Atom ResolveMeAtom(const Atom& a, const std::string& principal);
Rule ResolveMeRule(const Rule& r, const std::string& principal);

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_AST_H_
