#include "datalog/workspace.h"

#include <algorithm>
#include <thread>

#include "datalog/parser.h"
#include "datalog/pretty.h"
#include "util/strings.h"

namespace lbtrust::datalog {

using util::Result;
using util::Status;

namespace {

/// Options::threads == 0 means "one per hardware thread".
unsigned ResolveThreads(unsigned configured) {
  if (configured != 0) return configured;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Options::shards == 0 means "derive from the resolved thread count":
/// one shard per worker keeps the parallel merge's per-worker replay
/// ranges aligned with the pool, with no skew-prone remainder shards.
/// Derivation also clamps at the hardware thread count: the merge caps
/// its workers at hardware_concurrency - 1, so shards beyond that are
/// partitions no worker can ever own in parallel — pure locality tax on
/// an oversubscribed host. An explicit shards value still forces any
/// topology (the output is shard-count independent either way).
size_t ResolveShards(size_t configured, unsigned threads) {
  if (configured != 0) return std::min(configured, Relation::kMaxShards);
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::min<size_t>(std::min(ResolveThreads(threads), hw),
                          Relation::kMaxShards);
}

}  // namespace

Workspace::Workspace(Options options)
    : options_(std::move(options)), edb_(&pool_), store_(&pool_) {
  // Every relation the evaluator creates from here on shards its storage
  // by row hash so round merges can run one worker per shard. The EDB-side
  // relations the workspace itself creates stay single-partition (they are
  // mutated row-at-a-time on the caller's thread, where one partition is
  // the better layout).
  store_.set_default_shards(
      ResolveShards(options_.shards, options_.threads));
  if (options_.metrics) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    fixpoints_full_ =
        metrics_->GetCounter("lbtrust_fixpoints_total", "path=\"full\"");
    fixpoints_delta_ =
        metrics_->GetCounter("lbtrust_fixpoints_total", "path=\"delta\"");
    fixpoint_latency_us_ =
        metrics_->GetHistogram("lbtrust_fixpoint_latency_microseconds");
    commit_latency_us_ =
        metrics_->GetHistogram("lbtrust_commit_latency_microseconds");
    query_latency_us_ =
        metrics_->GetHistogram("lbtrust_query_latency_microseconds");
  }
  RegisterStandardBuiltins(&builtins_);
  // Meta relations maintained by the workspace itself.
  (void)EnsurePredicate("active", 1);
  (void)EnsurePredicate("owner", 2);
  (void)EnsurePredicate("pname", 2);
}

Status Workspace::EnsurePredicate(const std::string& name, size_t arity,
                                  bool partitioned) {
  if (arity > Relation::kMaxArity) {
    // Probe masks and projection hashes address columns as uint64_t bits;
    // column 64+ would shift out of range (UB). Reject here — every
    // predicate-creating path (AddFact, rule installs, declarations)
    // funnels through EnsurePredicate.
    return util::InvalidArgument(util::StrCat(
        "predicate '", name, "' has ", arity, " columns; the engine caps "
        "arity at ", Relation::kMaxArity));
  }
  bool existed = catalog_.Exists(name);
  LB_RETURN_IF_ERROR(catalog_.Declare(name, arity, partitioned));
  edb_.GetOrCreate(name, arity);
  if (!existed && !util::StartsWith(name, "$")) {
    Relation* pname = edb_.GetOrCreate("pname", 2);
    IdTuple row =
        InternTuple(&pool_, {Value::Sym(name), Value::Str(name)});
    bool inserted = pname->InsertIds(row.data());
    RecordEdbInsert("pname", row, inserted);
  }
  return util::OkStatus();
}

void Workspace::RecordEdbInsert(const std::string& pred, const IdTuple& ids,
                                bool inserted) {
  // Deltas matter only while the store reflects a completed fixpoint; bulk
  // loads before the first Fixpoint() and workspaces whose options rule
  // the delta path out skip the bookkeeping entirely.
  if (!inserted || !store_valid_ || !DeltaTrackingEnabled()) return;
  auto [it, fresh] = edb_delta_.try_emplace(pred, Relation(ids.size(), &pool_));
  (void)fresh;
  // Unique by construction: the EDB relation deduplicated the insert.
  it->second.AppendUnchecked(ids.data());
}

void Workspace::MarkRulesChanged() {
  rules_dirty_ = true;
  strat_cache_.reset();
}

Status Workspace::DeclareAtomPredicate(const Atom& atom) {
  if (atom.meta_atom || atom.meta_functor) {
    return util::UnsafeProgram(
        util::StrCat("meta pattern cannot be installed directly: ",
                     PrintAtom(atom)));
  }
  const BuiltinDef* builtin = builtins_.Find(atom.predicate);
  if (builtin != nullptr) {
    if (builtin->arity != atom.Arity()) {
      return util::TypeError(util::StrCat("builtin '", atom.predicate,
                                          "' expects ", builtin->arity,
                                          " arguments"));
    }
    return util::OkStatus();
  }
  return EnsurePredicate(atom.predicate, atom.Arity(),
                         atom.partition != nullptr);
}

void Workspace::RegisterBuiltin(const std::string& name, size_t arity,
                                std::vector<std::string> modes, BuiltinFn fn) {
  builtins_.Register(name, arity, std::move(modes), std::move(fn));
  catalog_.MarkBuiltin(name, arity);
  MarkRulesChanged();
}

Status Workspace::Load(std::string_view program) {
  return LoadClauses(options_.principal, program);
}

Status Workspace::LoadAs(const std::string& principal,
                         std::string_view program) {
  return LoadClauses(principal, program);
}

Status Workspace::RouteProgramClauses(
    const std::string& principal, std::string_view program,
    const std::function<Status(Rule)>& on_rule,
    const std::function<Status(Constraint)>& on_fail_constraint,
    const std::function<Status(Constraint)>& on_constraint) {
  LB_ASSIGN_OR_RETURN(std::vector<ParsedClause> clauses,
                      ParseProgram(program));
  // Materialize the routed view first (one parse, one me-resolve), so the
  // linter sees the whole program before the first clause installs — an
  // enforced lint error rejects the program with zero workspace mutation.
  struct RoutedItem {
    enum class Kind { kRule, kFailConstraint, kConstraint };
    Kind kind = Kind::kRule;
    Rule rule;
    Constraint constraint;
  };
  std::vector<RoutedItem> routed;
  for (ParsedClause& clause : clauses) {
    if (clause.kind == ParsedClause::Kind::kRule) {
      for (Rule& rule : clause.rules) {
        Rule resolved = ResolveMeRule(rule, principal);
        // `fail() <- body.` is the raw constraint form (§3.2).
        if (resolved.heads.size() == 1 &&
            resolved.heads[0].predicate == "fail" &&
            resolved.heads[0].args.empty() && !resolved.body.empty()) {
          RoutedItem item;
          item.kind = RoutedItem::Kind::kFailConstraint;
          item.constraint.label = resolved.label;
          item.constraint.lhs = resolved.body;
          item.constraint.display = PrintRule(resolved);
          routed.push_back(std::move(item));
          continue;
        }
        // Split multi-head rules.
        for (const Atom& head : resolved.heads) {
          RoutedItem item;
          item.rule.label = resolved.label;
          item.rule.heads = {CloneAtom(head)};
          item.rule.body = resolved.body;
          item.rule.aggregate = resolved.aggregate;
          routed.push_back(std::move(item));
        }
      }
    } else {
      for (Constraint& c : clause.constraints) {
        RoutedItem item;
        item.kind = RoutedItem::Kind::kConstraint;
        item.constraint.label = c.label;
        item.constraint.display = c.display;
        for (const Literal& l : c.lhs) {
          item.constraint.lhs.push_back(
              Literal{ResolveMeAtom(l.atom, principal), l.negated});
        }
        for (const auto& alt : c.rhs_dnf) {
          std::vector<Literal> out;
          for (const Literal& l : alt) {
            out.push_back(Literal{ResolveMeAtom(l.atom, principal), l.negated});
          }
          item.constraint.rhs_dnf.push_back(std::move(out));
        }
        routed.push_back(std::move(item));
      }
    }
  }

  if (options_.lint != Options::LintMode::kOff) {
    std::vector<const Rule*> lint_rules;
    std::vector<const Constraint*> lint_constraints;
    for (const RoutedItem& item : routed) {
      if (item.kind == RoutedItem::Kind::kRule) {
        lint_rules.push_back(&item.rule);
      } else {
        lint_constraints.push_back(&item.constraint);
      }
    }
    LintOptions lint_opts;
    lint_opts.builtins = &builtins_;
    last_lint_ = LintResolved(lint_rules, lint_constraints, lint_opts);
    if (options_.lint == Options::LintMode::kEnforce &&
        last_lint_.has_errors()) {
      return last_lint_.ToStatus();
    }
  }

  for (RoutedItem& item : routed) {
    switch (item.kind) {
      case RoutedItem::Kind::kRule:
        LB_RETURN_IF_ERROR(on_rule(std::move(item.rule)));
        break;
      case RoutedItem::Kind::kFailConstraint:
        LB_RETURN_IF_ERROR(on_fail_constraint(std::move(item.constraint)));
        break;
      case RoutedItem::Kind::kConstraint:
        LB_RETURN_IF_ERROR(on_constraint(std::move(item.constraint)));
        break;
    }
  }
  return util::OkStatus();
}

Status Workspace::LoadClauses(const std::string& principal,
                              std::string_view program) {
  return RouteProgramClauses(
      principal, program,
      [&](Rule single) {
        return InstallResolved(std::move(single), principal,
                               /*hidden=*/false);
      },
      [&](Constraint c) { return CompileConstraint(std::move(c)); },
      [&](Constraint c) { return AddConstraint(c); });
}

Status Workspace::AddRule(const Rule& rule) {
  return AddRuleAs(options_.principal, rule);
}

Status Workspace::AddRuleAs(const std::string& principal, const Rule& rule) {
  Rule resolved = ResolveMeRule(rule, principal);
  for (const Atom& head : resolved.heads) {
    Rule single;
    single.label = resolved.label;
    single.heads = {CloneAtom(head)};
    single.body = resolved.body;
    single.aggregate = resolved.aggregate;
    LB_RETURN_IF_ERROR(
        InstallResolved(std::move(single), principal, /*hidden=*/false));
  }
  return util::OkStatus();
}

Status Workspace::AddRuleText(std::string_view text) {
  LB_ASSIGN_OR_RETURN(Rule rule, ParseRuleText(text));
  return AddRule(rule);
}

namespace {

/// A clause whose heads are ground facts (quoted code may keep inner
/// variables — CollectAtomVars is shallow) routes to the EDB rather than
/// the rule set.
bool IsGroundFactRule(const Rule& rule) {
  if (!rule.IsFact()) return false;
  for (const Atom& h : rule.heads) {
    std::vector<std::string> vars;
    CollectAtomVars(h, &vars);
    if (!vars.empty() || h.meta_atom || h.meta_functor) return false;
  }
  return true;
}

}  // namespace

Status Workspace::InstallFactRule(const Rule& rule, const std::string& owner,
                                  bool from_activation,
                                  const FactSink* sink) {
  // Facts with fully ground heads go straight to the EDB; facts whose heads
  // contain quoted code keep inner variables as values.
  for (const Atom& head : rule.heads) {
    LB_RETURN_IF_ERROR(DeclareAtomPredicate(head));
    VarTable no_vars;
    Bindings no_bindings;
    Tuple tuple;
    if (head.partition) {
      LB_ASSIGN_OR_RETURN(Value v,
                          EvalGroundTerm(*head.partition, no_vars,
                                         no_bindings));
      tuple.push_back(std::move(v));
    }
    for (const Term& t : head.args) {
      LB_ASSIGN_OR_RETURN(Value v, EvalGroundTerm(t, no_vars, no_bindings));
      tuple.push_back(std::move(v));
    }
    if (from_activation && options_.track_provenance) {
      // Chain the activated fact to its active(R) witness, which in turn
      // chains to the says/export derivation that produced it.
      Derivation d;
      d.kind = Derivation::Kind::kActivated;
      d.rule_canon = PrintRule(rule);
      d.premises.emplace_back(
          "active",
          Tuple{Value::CodeRule(
              std::make_shared<const Rule>(CloneRule(rule)))});
      provenance_.Record(head.predicate, tuple, std::move(d));
    }
    if (sink != nullptr) {
      LB_RETURN_IF_ERROR((*sink)(head.predicate, std::move(tuple)));
    } else {
      LB_RETURN_IF_ERROR(AddFact(head.predicate, std::move(tuple)));
    }
  }
  (void)owner;
  return util::OkStatus();
}

Status Workspace::InstallResolved(Rule rule, const std::string& owner,
                                  bool hidden, bool from_activation) {
  // Pure ground facts are EDB inserts, not rules.
  if (IsGroundFactRule(rule)) {
    return InstallFactRule(rule, owner, from_activation);
  }

  std::string canon = PrintRule(rule);
  if (rules_by_canon_.count(canon) > 0) return util::OkStatus();

  auto installed = std::make_unique<InstalledRule>();
  LB_ASSIGN_OR_RETURN(installed->compiled, CompileRule(rule, builtins_));
  installed->rule = std::move(rule);
  installed->canon = canon;
  installed->owner = owner;
  installed->hidden = hidden;
  installed->id = hidden ? -(next_hidden_id_++) : next_rule_id_++;

  // Declare predicates.
  LB_RETURN_IF_ERROR(DeclareAtomPredicate(installed->rule.heads[0]));
  if (builtins_.Find(installed->rule.heads[0].predicate) != nullptr) {
    return util::UnsafeProgram(
        util::StrCat("cannot derive builtin predicate '",
                     installed->rule.heads[0].predicate, "'"));
  }
  catalog_.MarkDerived(installed->rule.heads[0].predicate);
  for (const Literal& l : installed->rule.body) {
    if (l.atom.meta_atom || l.atom.meta_functor) continue;  // caught below
    LB_RETURN_IF_ERROR(DeclareAtomPredicate(l.atom));
  }

  if (!hidden) {
    // Meta bookkeeping: active(R), owner(R,U).
    Value code = Value::CodeRule(
        std::make_shared<const Rule>(CloneRule(installed->rule)));
    LB_RETURN_IF_ERROR(AddFact("active", {code}));
    LB_RETURN_IF_ERROR(AddFact("owner", {code, Value::Sym(owner)}));
    if (install_hook_) install_hook_(installed->rule, installed->id);
  }

  rules_by_canon_[canon] = installed.get();
  rules_.push_back(std::move(installed));
  MarkRulesChanged();
  return util::OkStatus();
}

Status Workspace::RemoveRule(const Rule& rule) {
  Rule resolved = ResolveMeRule(rule, options_.principal);
  std::string canon = PrintRule(resolved);
  auto it = rules_by_canon_.find(canon);
  if (it == rules_by_canon_.end()) {
    return util::NotFound(util::StrCat("no such rule: ", canon));
  }
  InstalledRule* target = it->second;
  Value code =
      Value::CodeRule(std::make_shared<const Rule>(CloneRule(target->rule)));
  (void)RemoveFact("active", {code});
  (void)RemoveFact("owner", {code, Value::Sym(target->owner)});
  if (remove_hook_ && !target->hidden) remove_hook_(target->rule);
  rules_by_canon_.erase(it);
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                              [&](const std::unique_ptr<InstalledRule>& r) {
                                return r.get() == target;
                              }),
               rules_.end());
  MarkRulesChanged();
  return util::OkStatus();
}

Status Workspace::AddFact(const std::string& pred, Tuple tuple) {
  if (builtins_.Find(pred) != nullptr) {
    return util::InvalidArgument(
        util::StrCat("cannot assert builtin predicate '", pred, "'"));
  }
  LB_RETURN_IF_ERROR(EnsurePredicate(pred, tuple.size()));
  Relation* rel = edb_.GetOrCreate(pred, tuple.size());
  if (rel->arity() != tuple.size()) {
    return util::TypeError(util::StrCat("fact arity mismatch for '", pred,
                                        "': got ", tuple.size(), ", expected ",
                                        rel->arity()));
  }
  // The API edge interns exactly once; the delta log and the store reuse
  // the ids without ever re-hashing the payloads.
  IdTuple ids = InternTuple(&pool_, tuple);
  bool inserted = rel->InsertIds(ids.data());
  RecordEdbInsert(pred, ids, inserted);
  return util::OkStatus();
}

Status Workspace::RemoveFact(const std::string& pred, const Tuple& tuple) {
  Relation* rel = edb_.Get(pred);
  if (rel == nullptr || !rel->Erase(tuple)) {
    return util::NotFound(util::StrCat("no such fact in '", pred, "'"));
  }
  // Deletions cannot be replayed additively; force a full rebuild.
  edb_removed_ = true;
  return util::OkStatus();
}

Status Workspace::AddFactText(std::string_view text) {
  return AddFactTextAs(options_.principal, text);
}

Status Workspace::AddFactTextAs(const std::string& principal,
                                std::string_view text) {
  LB_ASSIGN_OR_RETURN(std::vector<ParsedClause> clauses, ParseProgram(text));
  for (const ParsedClause& clause : clauses) {
    if (clause.kind != ParsedClause::Kind::kRule) {
      return util::InvalidArgument("expected facts, found a constraint");
    }
    for (const Rule& rule : clause.rules) {
      if (!rule.IsFact()) {
        return util::InvalidArgument("expected facts, found a rule");
      }
      LB_RETURN_IF_ERROR(
          InstallFactRule(ResolveMeRule(rule, principal), principal));
    }
  }
  return util::OkStatus();
}

// ---------------------------------------------------------------------------
// Constraints
// ---------------------------------------------------------------------------

namespace {

void CollectLiteralVarsDeep(const Literal& lit, std::vector<std::string>* out);

void CollectTermVarsDeepLocal(const Term& t, std::vector<std::string>* out) {
  switch (t.kind) {
    case Term::Kind::kVariable:
      out->push_back(t.var);
      return;
    case Term::Kind::kStarVar:
      out->push_back(StarKey(t.var));
      return;
    case Term::Kind::kExpr:
      CollectTermVarsDeepLocal(*t.lhs, out);
      CollectTermVarsDeepLocal(*t.rhs, out);
      return;
    case Term::Kind::kPartRef:
      CollectTermVarsDeepLocal(*t.part_key, out);
      return;
    case Term::Kind::kConstant:
      if (t.value.kind() == ValueKind::kCode) {
        const CodeValue& code = t.value.AsCode();
        if (code.what == CodeValue::What::kRule) {
          for (const Atom& h : code.rule->heads) {
            CollectLiteralVarsDeep(Literal{h, false}, out);
          }
          for (const Literal& l : code.rule->body) {
            CollectLiteralVarsDeep(l, out);
          }
        } else if (code.what == CodeValue::What::kAtom) {
          CollectLiteralVarsDeep(Literal{*code.atom, false}, out);
        } else if (code.what == CodeValue::What::kTerm) {
          CollectTermVarsDeepLocal(*code.term, out);
        }
      }
      return;
    default:
      return;
  }
}

void CollectLiteralVarsDeep(const Literal& lit, std::vector<std::string>* out) {
  const Atom& a = lit.atom;
  if (a.meta_atom) {
    out->push_back(a.star ? StarKey(a.predicate) : a.predicate);
    return;
  }
  if (a.meta_functor) out->push_back(a.predicate);
  if (a.partition) CollectTermVarsDeepLocal(*a.partition, out);
  for (const Term& t : a.args) CollectTermVarsDeepLocal(t, out);
}

std::set<std::string> VarSet(const std::vector<Literal>& lits) {
  std::vector<std::string> vars;
  for (const Literal& l : lits) CollectLiteralVarsDeep(l, &vars);
  return {vars.begin(), vars.end()};
}

}  // namespace

Status Workspace::AddConstraint(const Constraint& constraint) {
  // Declaration forms.
  if (constraint.rhs_dnf.empty()) {
    if (constraint.lhs.size() == 1 && !constraint.lhs[0].negated) {
      const Atom& atom = constraint.lhs[0].atom;
      if (atom.Arity() == 1 && builtins_.Find(atom.predicate) == nullptr) {
        LB_RETURN_IF_ERROR(catalog_.DeclareEntityType(atom.predicate));
        return EnsurePredicate(atom.predicate, 1);
      }
      return DeclareAtomPredicate(atom);
    }
    return util::InvalidArgument(
        util::StrCat("declaration must be a single atom: ",
                     constraint.display));
  }

  // Record column types for declaration-shaped constraints:
  //   p(X,Y,...) -> t1(X), t2(Y), ... (single alternative, unary RHS).
  if (constraint.lhs.size() == 1 && !constraint.lhs[0].negated &&
      constraint.rhs_dnf.size() == 1) {
    const Atom& atom = constraint.lhs[0].atom;
    std::vector<Term> cols;
    if (atom.partition) cols.push_back(*atom.partition);
    cols.insert(cols.end(), atom.args.begin(), atom.args.end());
    bool all_vars = !cols.empty();
    for (const Term& t : cols) {
      if (!t.is_variable()) all_vars = false;
    }
    if (all_vars) {
      LB_RETURN_IF_ERROR(DeclareAtomPredicate(atom));
      std::vector<std::string> types(cols.size(), "");
      bool shape_ok = true;
      for (const Literal& l : constraint.rhs_dnf[0]) {
        if (l.negated || l.atom.Arity() != 1 || l.atom.args.size() != 1 ||
            !l.atom.args[0].is_variable()) {
          shape_ok = false;
          break;
        }
        for (size_t i = 0; i < cols.size(); ++i) {
          if (cols[i].var == l.atom.args[0].var) {
            types[i] = l.atom.predicate;
          }
        }
      }
      if (shape_ok) {
        LB_RETURN_IF_ERROR(catalog_.SetArgTypes(atom.predicate, types));
      }
    }
  }

  return CompileConstraint(constraint);
}

Status Workspace::CompileConstraint(Constraint constraint) {
  auto cc = std::make_unique<CompiledConstraint>();
  cc->display = constraint.display.empty() ? PrintConstraint(constraint)
                                           : constraint.display;

  // Declare LHS predicates so queries do not fail on unknown relations.
  for (const Literal& l : constraint.lhs) {
    if (!l.atom.meta_atom && !l.atom.meta_functor) {
      LB_RETURN_IF_ERROR(DeclareAtomPredicate(l.atom));
    }
  }

  std::set<std::string> lhs_vars = VarSet(constraint.lhs);

  // For each RHS alternative, build a "check" formula whose satisfaction
  // given LHS bindings certifies the constraint; the violation query is
  // LHS ∧ ¬check_1 ∧ ... ∧ ¬check_n. Single-literal alternatives negate
  // in place (wildcard negation handles existentials); multi-literal
  // alternatives with cross-literal existential variables compile to a
  // hidden auxiliary predicate.
  //
  // A "check" contributes either one literal (possibly negated) or a
  // disjunction of negated literals (per-literal split); the latter forces
  // a DNF expansion into multiple violation queries.
  std::vector<std::vector<Literal>> fail_bodies;
  fail_bodies.push_back(constraint.lhs);

  for (size_t alt_idx = 0; alt_idx < constraint.rhs_dnf.size(); ++alt_idx) {
    const std::vector<Literal>& alt = constraint.rhs_dnf[alt_idx];
    for (const Literal& l : alt) {
      if (!l.atom.meta_atom && !l.atom.meta_functor) {
        LB_RETURN_IF_ERROR(DeclareAtomPredicate(l.atom));
      }
    }
    if (alt.size() == 1) {
      Literal negated = alt[0];
      negated.negated = !negated.negated;
      for (auto& body : fail_bodies) body.push_back(negated);
      continue;
    }
    // Does an existential variable span multiple literals?
    std::map<std::string, int> occurrence;
    for (const Literal& l : alt) {
      std::set<std::string> vars = VarSet({l});
      for (const std::string& v : vars) {
        if (lhs_vars.count(v) == 0) occurrence[v] += 1;
      }
    }
    bool cross_literal = false;
    for (const auto& [var, count] : occurrence) {
      if (count > 1) cross_literal = true;
    }
    if (!cross_literal) {
      // ¬(a ∧ b) = ¬a ∨ ¬b: split into one violation query per literal.
      std::vector<std::vector<Literal>> expanded;
      for (const Literal& l : alt) {
        Literal negated = l;
        negated.negated = !negated.negated;
        for (const auto& body : fail_bodies) {
          std::vector<Literal> next = body;
          next.push_back(negated);
          expanded.push_back(std::move(next));
        }
      }
      fail_bodies = std::move(expanded);
      continue;
    }
    // Auxiliary predicate over the variables shared with the LHS.
    std::set<std::string> alt_vars = VarSet(alt);
    std::vector<std::string> shared;
    for (const std::string& v : alt_vars) {
      if (lhs_vars.count(v)) shared.push_back(v);
    }
    std::string aux_name =
        util::StrCat("$chk", next_constraint_id_, "_", alt_idx);
    Rule aux;
    Atom head;
    head.predicate = aux_name;
    for (const std::string& v : shared) {
      head.args.push_back(Term::Variable(v));
    }
    aux.heads = {head};
    aux.body = alt;
    cc->aux_canons.push_back(PrintRule(aux));
    LB_RETURN_IF_ERROR(
        InstallResolved(std::move(aux), options_.principal, /*hidden=*/true));
    Literal check;
    check.atom = head;
    check.negated = true;
    for (auto& body : fail_bodies) body.push_back(check);
  }

  // Compile each violation query.
  for (auto& body : fail_bodies) {
    Rule fail_rule;
    Atom head;
    head.predicate = util::StrCat("$fail", next_constraint_id_);
    // Head carries the LHS variables for the diagnostic message.
    for (const std::string& v : lhs_vars) {
      head.args.push_back(Term::Variable(v));
    }
    fail_rule.heads = {head};
    fail_rule.body = body;
    auto compiled = CompileRule(fail_rule, builtins_);
    if (!compiled.ok()) {
      return util::UnsafeProgram(
          util::StrCat("constraint not enforceable (", cc->display,
                       "): ", compiled.status().message()));
    }
    cc->fail_rules.push_back(std::move(*compiled));
  }
  cc->label = constraint.label;
  cc->source = std::move(constraint);
  constraints_.push_back(std::move(cc));
  ++next_constraint_id_;
  return util::OkStatus();
}

Status Workspace::RemoveConstraintsByLabel(const std::string& label) {
  if (label.empty()) return util::InvalidArgument("empty constraint label");
  bool found = false;
  for (auto it = constraints_.begin(); it != constraints_.end();) {
    if ((*it)->label != label) {
      ++it;
      continue;
    }
    found = true;
    for (const std::string& canon : (*it)->aux_canons) {
      auto rit = rules_by_canon_.find(canon);
      if (rit != rules_by_canon_.end()) {
        InstalledRule* target = rit->second;
        rules_by_canon_.erase(rit);
        rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                                    [&](const std::unique_ptr<InstalledRule>&
                                            r) { return r.get() == target; }),
                     rules_.end());
        MarkRulesChanged();
      }
    }
    it = constraints_.erase(it);
  }
  if (!found) {
    return util::NotFound(util::StrCat("no constraint labeled '", label,
                                       "'"));
  }
  return util::OkStatus();
}

// ---------------------------------------------------------------------------
// Fixpoint
// ---------------------------------------------------------------------------

Status Workspace::PrepareStore() {
  store_.Clear();  // bumps the generation: cached Relation* self-invalidate
  for (const auto& [name, rel] : edb_.relations()) {
    Relation* dst = store_.GetOrCreate(name, rel.arity());
    for (uint32_t i : rel.Rows()) {
      if (options_.track_provenance) {
        provenance_.Record(name, rel.RowTuple(i),
                           Derivation{});  // kBase; first wins
      }
      dst->InsertIds(rel.RowIds(i));  // same pool: pure id copy
    }
  }
  return util::OkStatus();
}

Result<const Stratification*> Workspace::CurrentStratification() {
  if (strat_cache_ == nullptr) {
    std::vector<const Rule*> plain;
    plain.reserve(rules_.size());
    for (const auto& r : rules_) plain.push_back(&r->rule);
    LB_ASSIGN_OR_RETURN(Stratification strat, Stratify(plain, builtins_));
    strat_cache_ = std::make_unique<Stratification>(std::move(strat));
  }
  return strat_cache_.get();
}

Status Workspace::RunRules() {
  std::vector<CompiledRule*> compiled;
  compiled.reserve(rules_.size());
  for (const auto& r : rules_) compiled.push_back(r->compiled.get());
  LB_ASSIGN_OR_RETURN(const Stratification* strat, CurrentStratification());
  Evaluator evaluator(&builtins_, &store_,
                      options_.track_provenance ? &provenance_ : nullptr,
                      ResolveThreads(options_.threads), &worker_pool_,
                      metrics_.get(), tracer_);
  return evaluator.Run(compiled, *strat, options_.limits,
                       options_.naive_eval);
}

Status Workspace::RunRulesDelta(std::map<std::string, Relation> seed) {
  std::vector<CompiledRule*> compiled;
  compiled.reserve(rules_.size());
  for (const auto& r : rules_) compiled.push_back(r->compiled.get());
  LB_ASSIGN_OR_RETURN(const Stratification* strat, CurrentStratification());
  Evaluator evaluator(&builtins_, &store_, /*provenance=*/nullptr,
                      ResolveThreads(options_.threads), &worker_pool_,
                      metrics_.get(), tracer_);
  return evaluator.RunIncremental(compiled, *strat, options_.limits,
                                  std::move(seed));
}

bool Workspace::DeltaFixpointEligible() const {
  if (!DeltaTrackingEnabled()) return false;
  if (!store_valid_ || rules_dirty_ || edb_removed_) return false;
  if (edb_delta_.empty()) return true;  // nothing changed at all
  // Affected closure: predicates whose extent may grow, seeded from the
  // dirty EDB relations and propagated through rule heads.
  std::set<std::string> affected;
  for (const auto& [pred, rel] : edb_delta_) affected.insert(pred);
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& r : rules_) {
      const CompiledRule* cr = r->compiled.get();
      if (cr == nullptr || affected.count(cr->head_pred) > 0) continue;
      for (const CompiledLiteral& lit : cr->body) {
        if (lit.kind == CompiledLiteral::Kind::kRelation &&
            affected.count(lit.pred) > 0) {
          affected.insert(cr->head_pred);
          grew = true;
          break;
        }
      }
    }
  }
  // Additive replay is exact only if no growing relation is read under
  // negation (derived tuples could become unjustified) or feeds an
  // aggregate (the old aggregate value would need retraction).
  for (const auto& r : rules_) {
    const CompiledRule* cr = r->compiled.get();
    if (cr == nullptr) continue;
    for (const CompiledLiteral& lit : cr->body) {
      if (affected.count(lit.pred) == 0) continue;
      if (lit.kind == CompiledLiteral::Kind::kNegation) return false;
      if (lit.kind == CompiledLiteral::Kind::kRelation &&
          cr->agg.has_value()) {
        return false;
      }
    }
  }
  return true;
}

Result<int> Workspace::ScanAndInstallActive() {
  const Relation* active = store_.Get("active");
  if (active == nullptr || active->arity() != 1) return 0;
  std::vector<Rule> pending;
  for (uint32_t i : active->Rows()) {
    Value v = active->ValueAt(i, 0);
    if (v.kind() != ValueKind::kCode) continue;
    const CodeValue& code = v.AsCode();
    if (code.what != CodeValue::What::kRule) continue;
    if (rules_by_canon_.count(code.canon) > 0) continue;
    // Ground facts activated via `active` land in the EDB; skip if present.
    pending.push_back(CloneRule(*code.rule));
  }
  int installed = 0;
  for (Rule& rule : pending) {
    Rule resolved = ResolveMeRule(rule, options_.principal);
    if (resolved.IsFact()) {
      // Check EDB membership to avoid infinite re-activation.
      bool all_present = true;
      for (const Atom& h : resolved.heads) {
        VarTable no_vars;
        Bindings no_bindings;
        Tuple tuple;
        bool ground = true;
        if (h.partition) {
          Result<Value> v = EvalGroundTerm(*h.partition, no_vars, no_bindings);
          if (!v.ok()) { ground = false; } else { tuple.push_back(*v); }
        }
        for (const Term& t : h.args) {
          Result<Value> v = EvalGroundTerm(t, no_vars, no_bindings);
          if (!v.ok()) { ground = false; break; }
          tuple.push_back(*v);
        }
        const Relation* rel = ground ? edb_.Get(h.predicate) : nullptr;
        if (!ground || rel == nullptr || !rel->Contains(tuple)) {
          all_present = false;
        }
      }
      if (all_present) continue;
    }
    for (const Atom& head : resolved.heads) {
      Rule single;
      single.label = resolved.label;
      single.heads = {CloneAtom(head)};
      single.body = resolved.body;
      single.aggregate = resolved.aggregate;
      LB_RETURN_IF_ERROR(InstallResolved(std::move(single),
                                         options_.principal,
                                         /*hidden=*/false,
                                         /*from_activation=*/true));
    }
    ++installed;
  }
  return installed;
}

void Workspace::CheckConstraints() {
  Evaluator evaluator(&builtins_, &store_);
  for (const auto& cc : constraints_) {
    for (const auto& fail_rule : cc->fail_rules) {
      int hits = 0;
      Status st = evaluator.EvalQuery(fail_rule.get(), [&](const Bindings& b) {
        if (hits >= 3) return;  // cap diagnostics per constraint
        std::string detail;
        for (size_t i = 0; i < fail_rule->head_cols.size(); ++i) {
          const CompiledArg& col = fail_rule->head_cols[i];
          if (col.kind != CompiledArg::Kind::kVar) continue;
          if (!b.IsBound(col.slot)) continue;
          if (!detail.empty()) detail += ", ";
          detail += util::StrCat(fail_rule->vars.name(col.slot), "=",
                                 b.Get(col.slot).ToString());
        }
        violations_.push_back(util::StrCat("constraint violated: ",
                                           cc->display,
                                           detail.empty() ? "" : " [",
                                           detail,
                                           detail.empty() ? "" : "]"));
        ++hits;
      });
      if (!st.ok()) {
        violations_.push_back(util::StrCat("constraint check failed: ",
                                           cc->display, ": ",
                                           st.ToString()));
      }
    }
  }
}

Status Workspace::Fixpoint() {
  obs::ScopedSpan span(tracer_, "fixpoint");
  const uint64_t start_us =
      metrics_ != nullptr ? obs::Tracer::NowMicros() : 0;
  const int full_before = full_eval_rounds_;
  const int delta_before = delta_eval_rounds_;
  Status status = FixpointImpl();
  if (metrics_ != nullptr) {
    fixpoint_latency_us_->Observe(obs::Tracer::NowMicros() - start_us);
    fixpoints_full_->Add(
        static_cast<uint64_t>(full_eval_rounds_ - full_before));
    fixpoints_delta_->Add(
        static_cast<uint64_t>(delta_eval_rounds_ - delta_before));
  }
  if (span.enabled()) {
    span.set_args(util::StrCat(
        "\"path\":\"", last_fixpoint_incremental_ ? "delta" : "full",
        "\",\"codegen_rounds\":", last_codegen_rounds_,
        ",\"ok\":", status.ok() ? "true" : "false"));
  }
  return status;
}

Status Workspace::FixpointImpl() {
  violations_.clear();
  last_codegen_rounds_ = 0;
  if (options_.track_provenance) provenance_.Clear();
  for (int round = 0; round < options_.max_codegen_rounds; ++round) {
    ++last_codegen_rounds_;
    if (DeltaFixpointEligible()) {
      // Delta-aware path: extend the store in place, seeding semi-naive
      // evaluation from the EDB tuples inserted since the last run. An
      // empty delta set means the store is already the fixpoint and rule
      // evaluation is skipped outright.
      last_fixpoint_incremental_ = true;
      ++delta_eval_rounds_;
      std::map<std::string, Relation> seed;
      for (auto& [pred, rel] : edb_delta_) {
        Relation* dst = store_.GetOrCreate(pred, rel.arity());
        for (uint32_t i : rel.Rows()) {
          if (dst->InsertIds(rel.RowIds(i))) {
            auto [it, fresh] =
                seed.try_emplace(pred, Relation(rel.arity(), &pool_));
            (void)fresh;
            it->second.AppendUnchecked(rel.RowIds(i));
          }
        }
      }
      edb_delta_.clear();
      if (!seed.empty()) {
        store_valid_ = false;  // invalid while mid-extension
        LB_RETURN_IF_ERROR(RunRulesDelta(std::move(seed)));
        store_valid_ = true;
      }
    } else {
      // Full rebuild: clear the store and recompute from the EDB.
      last_fixpoint_incremental_ = false;
      ++full_eval_rounds_;
      store_valid_ = false;
      edb_delta_.clear();
      LB_RETURN_IF_ERROR(PrepareStore());
      LB_RETURN_IF_ERROR(RunRules());
      store_valid_ = true;
      rules_dirty_ = false;
      edb_removed_ = false;
    }
    LB_ASSIGN_OR_RETURN(int installed, ScanAndInstallActive());
    if (installed == 0) {
      if (options_.check_constraints) {
        CheckConstraints();
        if (!violations_.empty()) {
          return util::ConstraintViolation(util::StrCat(
              violations_.size(), " violation(s); first: ", violations_[0]));
        }
      }
      return util::OkStatus();
    }
  }
  return util::Internal("codegen did not reach quiescence (cycle in "
                        "meta-rules?)");
}

std::string Workspace::DumpMetrics() {
  if (metrics_ == nullptr) return "# metrics disabled\n";
  // Refresh point-in-time gauges from the visible store before rendering;
  // counters and histograms are already live.
  for (const auto& [name, rel] : store_.relations()) {
    metrics_
        ->GetGauge("lbtrust_relation_rows",
                   util::StrCat("relation=\"", obs::LabelEscape(name), "\""))
        ->Set(static_cast<int64_t>(rel.size()));
  }
  return metrics_->RenderText();
}

LintReport Workspace::LintRules() const {
  // Lint the visible rule set; hidden constraint aux rules are
  // synthesized shapes the user never wrote, so they are excluded from
  // per-rule checks (their source constraints participate instead).
  std::vector<const Rule*> rules;
  std::vector<int> installed_pos;
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i]->hidden) continue;
    rules.push_back(&rules_[i]->rule);
    installed_pos.push_back(static_cast<int>(i));
  }
  std::vector<const Constraint*> constraints;
  constraints.reserve(constraints_.size());
  for (const auto& c : constraints_) constraints.push_back(&c->source);
  LintOptions opts;
  opts.builtins = &builtins_;
  LintReport report = LintResolved(rules, constraints, opts);
  // Re-anchor rule indexes onto the installed-rule list so they line up
  // with EXPLAIN's rule ids, then add the measured join-order smells.
  for (Diagnostic& d : report.diagnostics) {
    if (d.rule_index >= 0 &&
        d.rule_index < static_cast<int>(installed_pos.size())) {
      d.rule_index = installed_pos[static_cast<size_t>(d.rule_index)];
    }
  }
  auto rows = [this](const std::string& pred) -> size_t {
    const auto& rels = store_.relations();
    auto it = rels.find(pred);
    return it == rels.end() ? kUnknownRows : it->second.size();
  };
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i]->hidden || rules_[i]->compiled == nullptr) continue;
    LintJoinOrder(*rules_[i]->compiled, static_cast<int>(i), rows,
                  &report.diagnostics);
  }
  return report;
}

std::string Workspace::ExplainRules(ExplainFormat format) {
  std::vector<const CompiledRule*> compiled;
  std::vector<std::vector<Diagnostic>> diagnostics;
  compiled.reserve(rules_.size());
  LintReport lint = LintRules();
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i]->compiled == nullptr) continue;
    compiled.push_back(rules_[i]->compiled.get());
    diagnostics.emplace_back();
    for (const Diagnostic& d : lint.diagnostics) {
      if (d.rule_index == static_cast<int>(i)) {
        diagnostics.back().push_back(d);
      }
    }
  }
  return ExplainCompiledRules(compiled, metrics_.get(), format, &diagnostics);
}

std::vector<std::pair<std::string, size_t>> Workspace::RelationRowCounts()
    const {
  std::vector<std::pair<std::string, size_t>> out;
  out.reserve(store_.relations().size());
  for (const auto& [name, rel] : store_.relations()) {
    out.emplace_back(name, rel.size());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

Result<PreparedQuery> Workspace::Prepare(std::string_view atom_text) {
  LB_ASSIGN_OR_RETURN(Atom atom, ParseAtomText(atom_text));
  Atom resolved = ResolveMeAtom(atom, options_.principal);
  if (builtins_.Find(resolved.predicate) != nullptr) {
    return util::InvalidArgument("cannot query a builtin predicate");
  }
  Rule query;
  query.heads = {resolved};
  query.body = {Literal{resolved, false}};
  LB_ASSIGN_OR_RETURN(std::unique_ptr<CompiledRule> compiled,
                      CompileRule(query, builtins_));
  return PreparedQuery(this, std::string(atom_text), std::move(compiled));
}

size_t PreparedQuery::num_columns() const {
  return compiled_->head_cols.size();
}

std::string PreparedQuery::Explain(ExplainFormat format) const {
  return ExplainCompiledRule(*compiled_, workspace_->metrics(), format);
}

Status PreparedQuery::ForEach(const std::function<bool(const Tuple&)>& cb) {
  obs::Histogram* latency = workspace_->query_latency_us_;
  const uint64_t start_us =
      latency != nullptr ? obs::Tracer::NowMicros() : 0;
  CompiledRule* rule = compiled_.get();
  Evaluator evaluator(&workspace_->builtins_, &workspace_->store_);
  Tuple row;
  Status status = evaluator.EvalQueryUntil(rule, [&](const Bindings& b) {
    row.clear();
    row.reserve(rule->head_cols.size());
    for (const CompiledArg& col : rule->head_cols) {
      Result<Value> gv = EvalGroundTerm(col.term, rule->vars, b);
      if (!gv.ok()) return true;  // ungroundable output column: skip row
      row.push_back(std::move(*gv));
    }
    return cb(row);
  });
  if (latency != nullptr) {
    latency->Observe(obs::Tracer::NowMicros() - start_us);
  }
  return status;
}

Result<std::vector<Tuple>> PreparedQuery::Run() {
  std::vector<Tuple> out;
  LB_RETURN_IF_ERROR(ForEach([&](const Tuple& t) {
    out.push_back(t);
    return true;
  }));
  return out;
}

Result<size_t> PreparedQuery::Count() {
  size_t n = 0;
  LB_RETURN_IF_ERROR(ForEach([&](const Tuple&) {
    ++n;
    return true;
  }));
  return n;
}

Result<bool> PreparedQuery::Exists() {
  // Dedicated path: no output-tuple materialization. The groundability
  // check mirrors ForEach (a solution whose output columns cannot ground
  // is not a result row), but discards the values.
  obs::Histogram* latency = workspace_->query_latency_us_;
  const uint64_t start_us =
      latency != nullptr ? obs::Tracer::NowMicros() : 0;
  CompiledRule* rule = compiled_.get();
  Evaluator evaluator(&workspace_->builtins_, &workspace_->store_);
  bool found = false;
  LB_RETURN_IF_ERROR(evaluator.EvalQueryUntil(rule, [&](const Bindings& b) {
    for (const CompiledArg& col : rule->head_cols) {
      if (!EvalGroundTerm(col.term, rule->vars, b).ok()) return true;
    }
    found = true;
    return false;  // stop at the first match
  }));
  if (latency != nullptr) {
    latency->Observe(obs::Tracer::NowMicros() - start_us);
  }
  return found;
}

Result<std::vector<Tuple>> Workspace::Query(std::string_view atom_text) {
  LB_ASSIGN_OR_RETURN(PreparedQuery q, Prepare(atom_text));
  return q.Run();
}

Result<size_t> Workspace::Count(std::string_view atom_text) {
  LB_ASSIGN_OR_RETURN(PreparedQuery q, Prepare(atom_text));
  return q.Count();
}

Result<std::string> Workspace::Explain(std::string_view atom_text) {
  if (!options_.track_provenance) {
    return util::FailedPrecondition(
        "provenance tracking is disabled (Options::track_provenance)");
  }
  LB_ASSIGN_OR_RETURN(Atom atom, ParseAtomText(atom_text));
  Atom resolved = ResolveMeAtom(atom, options_.principal);
  LB_ASSIGN_OR_RETURN(std::vector<Tuple> rows, Query(atom_text));
  if (rows.empty()) {
    return util::NotFound(util::StrCat("no tuples match ", atom_text));
  }
  std::string out;
  for (const Tuple& t : rows) {
    out += provenance_.Explain(resolved.predicate, t);
  }
  return out;
}

const Relation* Workspace::GetRelation(const std::string& name) const {
  return store_.Get(name);
}

std::vector<const Rule*> Workspace::rules() const {
  std::vector<const Rule*> out;
  for (const auto& r : rules_) {
    if (!r->hidden) out.push_back(&r->rule);
  }
  return out;
}

bool Workspace::HasRule(const std::string& canon) const {
  return rules_by_canon_.count(canon) > 0;
}

// ---------------------------------------------------------------------------
// Transaction
// ---------------------------------------------------------------------------

Transaction& Transaction::AddFact(std::string pred, Tuple tuple) {
  if (done_) return *this;
  Op op;
  op.kind = Op::Kind::kAddFact;
  op.pred = std::move(pred);
  op.tuple = std::move(tuple);
  ops_.push_back(std::move(op));
  return *this;
}

Transaction& Transaction::RemoveFact(std::string pred, Tuple tuple) {
  if (done_) return *this;
  Op op;
  op.kind = Op::Kind::kRemoveFact;
  op.pred = std::move(pred);
  op.tuple = std::move(tuple);
  ops_.push_back(std::move(op));
  return *this;
}

Transaction& Transaction::AddRule(const Rule& rule) {
  if (done_) return *this;
  Op op;
  op.kind = Op::Kind::kAddRule;
  op.rule = CloneRule(rule);
  ops_.push_back(std::move(op));
  return *this;
}

Transaction& Transaction::RemoveRule(const Rule& rule) {
  if (done_) return *this;
  Op op;
  op.kind = Op::Kind::kRemoveRule;
  op.rule = CloneRule(rule);
  ops_.push_back(std::move(op));
  return *this;
}

Transaction& Transaction::AddRuleText(std::string_view text) {
  if (done_) return *this;
  Op op;
  op.kind = Op::Kind::kAddRuleText;
  op.text = std::string(text);
  ops_.push_back(std::move(op));
  return *this;
}

Transaction& Transaction::AddFactText(std::string_view text) {
  return AddFactTextAs(std::string(), text);
}

Transaction& Transaction::AddFactTextAs(std::string principal,
                                        std::string_view text) {
  if (done_) return *this;
  Op op;
  op.kind = Op::Kind::kAddFactText;
  op.text = std::string(text);
  op.principal = std::move(principal);
  ops_.push_back(std::move(op));
  return *this;
}

Transaction& Transaction::AddProgram(std::string_view text) {
  return AddProgramAs(std::string(), text);
}

Transaction& Transaction::AddProgramAs(std::string principal,
                                       std::string_view text) {
  if (done_) return *this;
  Op op;
  op.kind = Op::Kind::kAddProgram;
  op.text = std::string(text);
  op.principal = std::move(principal);
  ops_.push_back(std::move(op));
  return *this;
}

Transaction& Transaction::Say(std::string destination,
                              std::string_view rule_text) {
  if (done_) return *this;
  Op op;
  op.kind = Op::Kind::kSay;
  op.pred = std::move(destination);
  op.text = std::string(rule_text);
  ops_.push_back(std::move(op));
  return *this;
}

void Transaction::Abort() {
  ops_.clear();
  done_ = true;
}

Status Transaction::Commit() {
  obs::Histogram* latency = workspace_->commit_latency_us_;
  const uint64_t start_us =
      latency != nullptr ? obs::Tracer::NowMicros() : 0;
  Status status = Apply();
  if (status.ok()) status = workspace_->Fixpoint();
  if (latency != nullptr) {
    latency->Observe(obs::Tracer::NowMicros() - start_us);
  }
  return status;
}

Status Transaction::CommitNoFixpoint() { return Apply(); }

Status Transaction::Apply() {
  if (done_) {
    return util::FailedPrecondition(
        "transaction already committed or aborted");
  }
  done_ = true;
  Workspace* ws = workspace_;
  std::vector<std::function<void()>> undo;

  // Each primitive pushes its inverse; on failure the applied prefix is
  // unwound in reverse. Predicate declarations and constraint installs are
  // not inverted (idempotent metadata; see the class comment).
  auto apply_add_fact = [&](const std::string& pred,
                            const Tuple& tuple) -> Status {
    const Relation* rel = ws->edb_.Get(pred);
    bool existed = rel != nullptr && rel->Contains(tuple);
    LB_RETURN_IF_ERROR(ws->AddFact(pred, Tuple(tuple)));
    if (!existed) {
      undo.push_back(
          [ws, pred, tuple]() { (void)ws->RemoveFact(pred, tuple); });
    }
    return util::OkStatus();
  };

  auto apply_remove_fact = [&](const std::string& pred,
                               const Tuple& tuple) -> Status {
    LB_RETURN_IF_ERROR(ws->RemoveFact(pred, tuple));
    undo.push_back(
        [ws, pred, tuple]() { (void)ws->AddFact(pred, Tuple(tuple)); });
    return util::OkStatus();
  };

  // Ground-fact clause: InstallFactRule with an undo-recording sink in
  // place of the plain AddFact.
  Workspace::FactSink fact_sink = [&](const std::string& pred,
                                      Tuple tuple) -> Status {
    return apply_add_fact(pred, tuple);
  };
  auto apply_fact_rule = [&](const Rule& resolved) -> Status {
    return ws->InstallFactRule(resolved, ws->options_.principal,
                               /*from_activation=*/false, &fact_sink);
  };

  // One resolved single-head rule clause: route ground facts to the EDB
  // and the rest through InstallResolved (mirrors InstallResolved's own
  // routing, with undo).
  auto apply_single_rule = [&](Rule single,
                               const std::string& principal) -> Status {
    if (IsGroundFactRule(single)) return apply_fact_rule(single);
    std::string canon = PrintRule(single);
    bool existed = ws->HasRule(canon);
    Rule for_undo = CloneRule(single);
    LB_RETURN_IF_ERROR(
        ws->InstallResolved(std::move(single), principal, /*hidden=*/false));
    if (!existed) {
      undo.push_back([ws, for_undo]() { (void)ws->RemoveRule(for_undo); });
    }
    return util::OkStatus();
  };

  // Rule clause: me-resolve and split heads (mirrors Workspace::AddRuleAs).
  auto apply_rule = [&](const Rule& rule,
                        const std::string& principal) -> Status {
    Rule resolved = ResolveMeRule(rule, principal);
    for (const Atom& head : resolved.heads) {
      Rule single;
      single.label = resolved.label;
      single.heads = {CloneAtom(head)};
      single.body = resolved.body;
      single.aggregate = resolved.aggregate;
      LB_RETURN_IF_ERROR(apply_single_rule(std::move(single), principal));
    }
    return util::OkStatus();
  };

  auto apply_remove_rule = [&](const Rule& rule) -> Status {
    Rule resolved = ResolveMeRule(rule, ws->options_.principal);
    auto it = ws->rules_by_canon_.find(PrintRule(resolved));
    if (it == ws->rules_by_canon_.end()) {
      return util::NotFound(
          util::StrCat("no such rule: ", PrintRule(resolved)));
    }
    Rule saved = CloneRule(it->second->rule);
    std::string owner = it->second->owner;
    LB_RETURN_IF_ERROR(ws->RemoveRule(resolved));
    undo.push_back([ws, saved, owner]() {
      (void)ws->InstallResolved(CloneRule(saved), owner, /*hidden=*/false);
    });
    return util::OkStatus();
  };

  auto apply_fact_text = [&](const std::string& text,
                             const std::string& principal) -> Status {
    LB_ASSIGN_OR_RETURN(std::vector<ParsedClause> clauses,
                        ParseProgram(text));
    for (const ParsedClause& clause : clauses) {
      if (clause.kind != ParsedClause::Kind::kRule) {
        return util::InvalidArgument("expected facts, found a constraint");
      }
      for (const Rule& rule : clause.rules) {
        if (!rule.IsFact()) {
          return util::InvalidArgument("expected facts, found a rule");
        }
        LB_RETURN_IF_ERROR(apply_fact_rule(ResolveMeRule(rule, principal)));
      }
    }
    return util::OkStatus();
  };

  // Program clause list: same routing as Workspace::Load, with the
  // transaction's undo-aware rule install (constraints are not undone;
  // see the class comment).
  auto apply_program = [&](const std::string& text,
                           const std::string& principal) -> Status {
    return ws->RouteProgramClauses(
        principal, text,
        [&](Rule single) {
          return apply_single_rule(std::move(single), principal);
        },
        [&](Constraint c) { return ws->CompileConstraint(std::move(c)); },
        [&](Constraint c) { return ws->AddConstraint(c); });
  };

  auto apply_say = [&](const std::string& destination,
                       const std::string& rule_text) -> Status {
    LB_ASSIGN_OR_RETURN(Rule rule, ParseRuleText(rule_text));
    Value code = Value::CodeRule(std::make_shared<const Rule>(std::move(rule)));
    return apply_add_fact("says",
                          {Value::Sym(ws->options_.principal),
                           Value::Sym(destination), std::move(code)});
  };

  for (const Op& op : ops_) {
    const std::string& principal =
        op.principal.empty() ? ws->options_.principal : op.principal;
    Status st;
    switch (op.kind) {
      case Op::Kind::kAddFact:
        st = apply_add_fact(op.pred, op.tuple);
        break;
      case Op::Kind::kRemoveFact:
        st = apply_remove_fact(op.pred, op.tuple);
        break;
      case Op::Kind::kAddRule:
        st = apply_rule(op.rule, principal);
        break;
      case Op::Kind::kRemoveRule:
        st = apply_remove_rule(op.rule);
        break;
      case Op::Kind::kAddRuleText: {
        auto parsed = ParseRuleText(op.text);
        st = parsed.ok() ? apply_rule(*parsed, principal) : parsed.status();
        break;
      }
      case Op::Kind::kAddFactText:
        st = apply_fact_text(op.text, principal);
        break;
      case Op::Kind::kAddProgram:
        st = apply_program(op.text, principal);
        break;
      case Op::Kind::kSay:
        st = apply_say(op.pred, op.text);
        break;
    }
    if (!st.ok()) {
      for (auto it = undo.rbegin(); it != undo.rend(); ++it) (*it)();
      ops_.clear();
      return st;
    }
  }
  ops_.clear();
  return util::OkStatus();
}

}  // namespace lbtrust::datalog
