#include "datalog/magic.h"

#include <map>
#include <set>

#include "datalog/pretty.h"
#include "datalog/unify.h"
#include "util/strings.h"

namespace lbtrust::datalog {

using util::Result;
using util::Status;

namespace {

// Variables of a term that must be bound for the argument to count as
// bound (deep: pattern variables inside quoted code included).
void TermVars(const Term& t, std::set<std::string>* out) {
  std::vector<std::string> vars;
  CollectTermVars(t, &vars);
  out->insert(vars.begin(), vars.end());
}

bool ArgBound(const Term& t, const std::set<std::string>& bound) {
  std::set<std::string> vars;
  TermVars(t, &vars);
  for (const std::string& v : vars) {
    if (bound.count(v) == 0) return false;
  }
  return true;
}

void BindAtomVars(const Atom& a, std::set<std::string>* bound) {
  std::vector<std::string> vars;
  CollectAtomVars(a, &vars);
  bound->insert(vars.begin(), vars.end());
}

std::string AdornedName(const std::string& pred, const std::string& adorn) {
  return util::StrCat(pred, "__", adorn);
}

std::string MagicName(const std::string& pred, const std::string& adorn) {
  return util::StrCat("m_", pred, "__", adorn);
}

// Atom m_p__a(args at bound positions).
Atom MagicAtom(const Atom& original, const std::string& adorn) {
  Atom magic;
  magic.predicate = MagicName(original.predicate, adorn);
  std::vector<Term> cols;
  if (original.partition) cols.push_back(CloneTerm(*original.partition));
  for (const Term& t : original.args) cols.push_back(CloneTerm(t));
  for (size_t i = 0; i < cols.size(); ++i) {
    if (adorn[i] == 'b') magic.args.push_back(std::move(cols[i]));
  }
  return magic;
}

class Transformer {
 public:
  Transformer(const std::vector<const Rule*>& rules) {
    for (const Rule* r : rules) {
      by_head_[r->heads[0].predicate].push_back(r);
    }
  }

  Result<MagicProgram> Run(const Atom& query) {
    if (query.meta_atom || query.meta_functor) {
      return util::InvalidArgument("query must be a plain atom");
    }
    auto it = by_head_.find(query.predicate);
    if (it == by_head_.end()) {
      return util::InvalidArgument(util::StrCat(
          "query predicate '", query.predicate, "' has no rules"));
    }
    // Query adornment: constants (and ground code) are bound.
    std::string adorn;
    std::vector<Term> cols;
    if (query.partition) cols.push_back(CloneTerm(*query.partition));
    for (const Term& t : query.args) cols.push_back(CloneTerm(t));
    std::set<std::string> no_bound;
    Tuple seed;
    for (const Term& t : cols) {
      if (ArgBound(t, no_bound)) {
        adorn.push_back('b');
        VarTable no_vars;
        Bindings none;
        LB_ASSIGN_OR_RETURN(Value v, EvalGroundTerm(t, no_vars, none));
        seed.push_back(std::move(v));
      } else {
        adorn.push_back('f');
      }
    }

    LB_RETURN_IF_ERROR(Demand(query.predicate, adorn));

    MagicProgram out;
    out.rules = std::move(rules_);
    out.seed_pred = MagicName(query.predicate, adorn);
    out.seed_args = std::move(seed);
    out.answer_pred = AdornedName(query.predicate, adorn);
    return out;
  }

 private:
  bool IsDerived(const std::string& pred) const {
    return by_head_.count(pred) > 0;
  }

  // Emits the adorned + magic rules for (pred, adorn) and recursively for
  // every derived predicate demand reaches.
  Status Demand(const std::string& pred, const std::string& adorn) {
    if (!done_.insert(pred + "/" + adorn).second) return util::OkStatus();
    for (const Rule* rule : by_head_.at(pred)) {
      if (rule->aggregate.has_value()) {
        return util::InvalidArgument(
            "magic-sets transform does not support aggregate rules");
      }
      LB_RETURN_IF_ERROR(TransformRule(*rule, adorn));
    }
    return util::OkStatus();
  }

  Status TransformRule(const Rule& rule, const std::string& adorn) {
    const Atom& head = rule.heads[0];
    std::vector<Term> head_cols;
    if (head.partition) head_cols.push_back(CloneTerm(*head.partition));
    for (const Term& t : head.args) head_cols.push_back(CloneTerm(t));
    if (head_cols.size() != adorn.size()) {
      return util::InvalidArgument(util::StrCat(
          "adornment arity mismatch for '", head.predicate, "'"));
    }

    // Bound head variables feed sideways information passing.
    std::set<std::string> bound;
    for (size_t i = 0; i < head_cols.size(); ++i) {
      if (adorn[i] == 'b') TermVars(head_cols[i], &bound);
    }

    Atom guard = MagicAtom(head, adorn);
    std::vector<Literal> processed;
    processed.push_back(Literal{guard, false});

    for (const Literal& lit : rule.body) {
      if (lit.negated || lit.atom.predicate == "=" ||
          !IsDerived(lit.atom.predicate)) {
        // EDB / builtin / negation: pass through, then extend bindings
        // (negation binds nothing).
        processed.push_back(Literal{CloneAtom(lit.atom), lit.negated});
        if (!lit.negated) BindAtomVars(lit.atom, &bound);
        continue;
      }
      // Derived literal: compute its adornment under current bindings.
      std::vector<Term> cols;
      if (lit.atom.partition) cols.push_back(CloneTerm(*lit.atom.partition));
      for (const Term& t : lit.atom.args) cols.push_back(CloneTerm(t));
      std::string sub_adorn;
      for (const Term& t : cols) {
        sub_adorn.push_back(ArgBound(t, bound) ? 'b' : 'f');
      }
      // Magic rule: demand on q flows from the guard plus what has been
      // established so far.
      Rule magic_rule;
      magic_rule.heads = {MagicAtom(lit.atom, sub_adorn)};
      for (const Literal& p : processed) {
        magic_rule.body.push_back(Literal{CloneAtom(p.atom), p.negated});
      }
      rules_.push_back(std::move(magic_rule));
      LB_RETURN_IF_ERROR(Demand(lit.atom.predicate, sub_adorn));
      // Replace the literal with its adorned copy.
      Atom adorned = CloneAtom(lit.atom);
      adorned.predicate = AdornedName(lit.atom.predicate, sub_adorn);
      processed.push_back(Literal{adorned, false});
      BindAtomVars(lit.atom, &bound);
    }

    Rule guarded;
    guarded.label = rule.label;
    Atom new_head = CloneAtom(head);
    new_head.predicate = AdornedName(head.predicate, adorn);
    guarded.heads = {new_head};
    guarded.body = std::move(processed);
    rules_.push_back(std::move(guarded));
    return util::OkStatus();
  }

  std::map<std::string, std::vector<const Rule*>> by_head_;
  std::set<std::string> done_;
  std::vector<Rule> rules_;
};

}  // namespace

Result<MagicProgram> MagicSetTransform(const std::vector<const Rule*>& rules,
                                       const Atom& query) {
  for (const Rule* r : rules) {
    if (r->heads.size() != 1) {
      return util::InvalidArgument("rules must be single-headed");
    }
  }
  return Transformer(rules).Run(query);
}

}  // namespace lbtrust::datalog
