#ifndef LBTRUST_DATALOG_VALUE_H_
#define LBTRUST_DATALOG_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lbtrust::datalog {

class Rule;
struct Atom;
struct Term;
struct Literal;

/// Runtime value kinds stored in relations.
///
/// `kCode` is the distinguishing feature of the engine: a quoted AST
/// fragment (rule, atom or term) is a first-class value, which is how the
/// paper's `says(U1,U2,R)` communicates whole rules between principals and
/// how the meta-model exposes program structure to programs (§3.3).
/// `kPart` is a partition reference like `export[alice]`, the higher-order
/// predicate handle used by `predNode` placement rules (§3.4-3.5).
enum class ValueKind {
  kNil = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kSymbol,
  kCode,
  kPart,
};

/// A quoted code fragment. Equality and hashing go through the canonical
/// printed form so that structurally identical fragments (e.g. a rule that
/// travelled through the network and back) compare equal.
struct CodeValue {
  enum class What { kRule, kAtom, kTerm, kLiteralList, kTermList };
  What what = What::kRule;
  std::shared_ptr<const Rule> rule;
  std::shared_ptr<const Atom> atom;
  std::shared_ptr<const Term> term;
  /// kLiteralList: what a starred atom pattern (`A*`) binds to.
  std::shared_ptr<const std::vector<Literal>> literals;
  /// kTermList: what a starred term pattern (`T*`) binds to.
  std::shared_ptr<const std::vector<Term>> terms;
  std::string canon;  ///< canonical printed form (identity)
};

class Value;

/// A partition reference `pred[key]`.
struct PartValue {
  std::string predicate;
  std::shared_ptr<const Value> key;
  std::string canon;
};

/// Immutable tagged value. Cheap to copy: strings and code bodies are
/// shared.
class Value {
 public:
  /// Nil (used only as "unbound" sentinel inside the evaluator).
  Value() = default;

  static Value Bool(bool v);
  static Value Int(int64_t v);
  static Value Double(double v);
  static Value Str(std::string v);
  static Value Sym(std::string v);
  /// Wraps an AST fragment; canonical form computed internally.
  static Value CodeRule(std::shared_ptr<const Rule> rule);
  static Value CodeAtom(std::shared_ptr<const Atom> atom);
  static Value CodeTerm(std::shared_ptr<const Term> term);
  static Value CodeLiteralList(std::vector<Literal> literals);
  static Value CodeTermList(std::vector<Term> terms);
  static Value Part(std::string predicate, Value key);

  ValueKind kind() const { return kind_; }
  bool is_nil() const { return kind_ == ValueKind::kNil; }

  bool AsBool() const { return scalar_.b; }
  int64_t AsInt() const { return scalar_.i; }
  double AsDouble() const { return scalar_.d; }
  /// Text payload of kString / kSymbol.
  const std::string& AsText() const { return *text_; }
  const CodeValue& AsCode() const { return *code_; }
  const PartValue& AsPart() const { return *part_; }

  /// Numeric view: kInt/kDouble as double (for `total` aggregation and
  /// arithmetic); others are not numeric.
  bool IsNumeric() const {
    return kind_ == ValueKind::kInt || kind_ == ValueKind::kDouble;
  }
  double NumericValue() const {
    return kind_ == ValueKind::kInt ? static_cast<double>(scalar_.i)
                                    : scalar_.d;
  }

  uint64_t Hash() const;
  /// Display form: symbols bare, strings quoted, code in [| ... |].
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  /// Total order across kinds (kind index first), used for deterministic
  /// output ordering.
  friend bool operator<(const Value& a, const Value& b);

 private:
  ValueKind kind_ = ValueKind::kNil;
  union Scalar {
    bool b;
    int64_t i;
    double d;
  } scalar_{};
  std::shared_ptr<const std::string> text_;
  std::shared_ptr<const CodeValue> code_;
  std::shared_ptr<const PartValue> part_;
};

/// A row in a relation.
using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const;
};

std::string TupleToString(const Tuple& t);

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_VALUE_H_
