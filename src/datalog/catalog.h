#ifndef LBTRUST_DATALOG_CATALOG_H_
#define LBTRUST_DATALOG_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace lbtrust::datalog {

/// Predicate metadata: logical attributes (name, arity, declared argument
/// types) plus engine attributes (partitioned storage, builtin, whether any
/// rule derives it). Mirrors the footnote-1 "predicate definition" of §3.1.
struct PredicateInfo {
  std::string name;
  size_t arity = 0;
  bool partitioned = false;   ///< declared via p[X](...) syntax
  bool is_entity_type = false;  ///< declared via `p(X) ->.`
  bool builtin = false;
  bool derived = false;       ///< appears in some rule head
  /// Declared column types (empty string = unconstrained). Index 0 is the
  /// partition column for partitioned predicates.
  std::vector<std::string> arg_types;
};

/// Name -> PredicateInfo map with consistency checking.
class Catalog {
 public:
  /// Declares (or re-checks) a predicate. Arity/partitioning mismatches
  /// with a previous declaration are errors.
  util::Status Declare(const std::string& name, size_t arity,
                       bool partitioned = false);
  /// Marks `name` as an entity type (unary).
  util::Status DeclareEntityType(const std::string& name);
  /// Records declared column types from a constraint of declaration shape.
  util::Status SetArgTypes(const std::string& name,
                           std::vector<std::string> types);
  void MarkDerived(const std::string& name);
  void MarkBuiltin(const std::string& name, size_t arity);

  bool Exists(const std::string& name) const;
  const PredicateInfo* Find(const std::string& name) const;

  /// Deterministic iteration (sorted by name).
  const std::map<std::string, PredicateInfo>& predicates() const {
    return preds_;
  }

 private:
  std::map<std::string, PredicateInfo> preds_;
};

}  // namespace lbtrust::datalog

#endif  // LBTRUST_DATALOG_CATALOG_H_
