#include "datalog/parser.h"

#include <memory>

#include "datalog/lexer.h"
#include "datalog/pretty.h"
#include "util/strings.h"

namespace lbtrust::datalog {

using util::ParseError;
using util::Result;
using util::Status;

namespace {

/// Body formula tree, flattened to DNF before rule construction.
struct Formula {
  enum class Kind { kLit, kAnd, kOr, kNot };
  Kind kind = Kind::kLit;
  Literal lit;
  std::vector<Formula> children;

  static Formula Lit(Literal l) {
    Formula f;
    f.kind = Kind::kLit;
    f.lit = std::move(l);
    return f;
  }
  static Formula Node(Kind kind, std::vector<Formula> ch) {
    Formula f;
    f.kind = kind;
    f.children = std::move(ch);
    return f;
  }
};

// Negation-normal-form: push kNot down to literals.
Formula ToNnf(const Formula& f, bool negate) {
  switch (f.kind) {
    case Formula::Kind::kLit: {
      Formula out = f;
      if (negate) out.lit.negated = !out.lit.negated;
      return out;
    }
    case Formula::Kind::kNot:
      return ToNnf(f.children[0], !negate);
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      bool is_and = (f.kind == Formula::Kind::kAnd) != negate;
      std::vector<Formula> ch;
      ch.reserve(f.children.size());
      for (const Formula& c : f.children) ch.push_back(ToNnf(c, negate));
      return Formula::Node(is_and ? Formula::Kind::kAnd : Formula::Kind::kOr,
                           std::move(ch));
    }
  }
  return f;
}

// NNF -> DNF (list of conjunctions).
std::vector<std::vector<Literal>> ToDnf(const Formula& f) {
  switch (f.kind) {
    case Formula::Kind::kLit:
      return {{f.lit}};
    case Formula::Kind::kOr: {
      std::vector<std::vector<Literal>> out;
      for (const Formula& c : f.children) {
        auto sub = ToDnf(c);
        out.insert(out.end(), sub.begin(), sub.end());
      }
      return out;
    }
    case Formula::Kind::kAnd: {
      std::vector<std::vector<Literal>> acc = {{}};
      for (const Formula& c : f.children) {
        auto sub = ToDnf(c);
        std::vector<std::vector<Literal>> next;
        next.reserve(acc.size() * sub.size());
        for (const auto& a : acc) {
          for (const auto& s : sub) {
            std::vector<Literal> merged = a;
            merged.insert(merged.end(), s.begin(), s.end());
            next.push_back(std::move(merged));
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
    case Formula::Kind::kNot:
      break;  // eliminated by NNF
  }
  return {};
}

class Parser {
 public:
  Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<ParsedClause>> ParseProgram() {
    std::vector<ParsedClause> out;
    while (!At(TokenKind::kEnd)) {
      LB_ASSIGN_OR_RETURN(ParsedClause clause, ParseClause());
      out.push_back(std::move(clause));
    }
    return out;
  }

  Result<ParsedClause> ParseClause() {
    std::string label;
    if (At(TokenKind::kIdent) && AtAhead(1, TokenKind::kColon)) {
      label = Cur().text;
      Next();
      Next();
    }
    LB_ASSIGN_OR_RETURN(Formula head, ParseFormula());
    ParsedClause clause;
    if (At(TokenKind::kDot)) {
      // Fact(s): conjunction of ground-at-heart atoms.
      Next();
      LB_ASSIGN_OR_RETURN(std::vector<Atom> heads, FormulaToHeads(head));
      Rule rule;
      rule.label = label;
      rule.heads = std::move(heads);
      clause.kind = ParsedClause::Kind::kRule;
      clause.rules.push_back(std::move(rule));
      return clause;
    }
    if (At(TokenKind::kArrowLeft)) {
      Next();
      LB_ASSIGN_OR_RETURN(std::vector<Atom> heads, FormulaToHeads(head));
      std::optional<Aggregate> agg;
      if (At(TokenKind::kIdent) && Cur().text == "agg") {
        LB_ASSIGN_OR_RETURN(agg, ParseAggregate());
      }
      LB_ASSIGN_OR_RETURN(Formula body, ParseFormula());
      LB_RETURN_IF_ERROR(Expect(TokenKind::kDot));
      auto alts = ToDnf(ToNnf(body, false));
      if (agg.has_value() && alts.size() != 1) {
        return Error("aggregate rules may not contain disjunction");
      }
      clause.kind = ParsedClause::Kind::kRule;
      for (auto& alt : alts) {
        Rule rule;
        rule.label = label;
        rule.heads = heads;
        rule.body = std::move(alt);
        rule.aggregate = agg;
        clause.rules.push_back(std::move(rule));
      }
      return clause;
    }
    if (At(TokenKind::kArrowRight)) {
      Next();
      std::vector<std::vector<Literal>> rhs_dnf;
      if (!At(TokenKind::kDot)) {
        LB_ASSIGN_OR_RETURN(Formula rhs, ParseFormula());
        rhs_dnf = ToDnf(ToNnf(rhs, false));
      }
      LB_RETURN_IF_ERROR(Expect(TokenKind::kDot));
      auto lhs_alts = ToDnf(ToNnf(head, false));
      clause.kind = ParsedClause::Kind::kConstraint;
      for (auto& lhs : lhs_alts) {
        Constraint c;
        c.label = label;
        c.lhs = std::move(lhs);
        c.rhs_dnf = rhs_dnf;
        c.display = PrintConstraintSource(c);
        clause.constraints.push_back(std::move(c));
      }
      return clause;
    }
    return Error(util::StrCat("expected '.', '<-' or '->', got ",
                              TokenKindName(Cur().kind)));
  }

  Result<Rule> ParseSingleRule() {
    LB_ASSIGN_OR_RETURN(ParsedClause clause, ParseClause());
    if (clause.kind != ParsedClause::Kind::kRule || clause.rules.size() != 1) {
      return Error("expected a single rule or fact");
    }
    if (!At(TokenKind::kEnd)) return Error("trailing input after rule");
    return std::move(clause.rules[0]);
  }

  Result<Atom> ParseSingleAtom() {
    LB_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
    if (lit.negated) return Error("expected a positive atom");
    if (!At(TokenKind::kEnd)) return Error("trailing input after atom");
    return std::move(lit.atom);
  }

  Result<Term> ParseSingleTerm() {
    LB_ASSIGN_OR_RETURN(Term t, ParseTerm());
    if (!At(TokenKind::kEnd)) return Error("trailing input after term");
    return t;
  }

  // ---- Binder / SeNDlog surface syntax ------------------------------------

  Result<std::vector<SurfaceUnit>> ParseSurface() {
    std::vector<SurfaceUnit> units;
    units.emplace_back();
    while (!At(TokenKind::kEnd)) {
      // "At S:" / "at alice:" context header.
      bool at_header =
          ((At(TokenKind::kVar) && Cur().text == "At") ||
           (At(TokenKind::kIdent) && Cur().text == "at")) &&
          (AtAhead(1, TokenKind::kVar) || AtAhead(1, TokenKind::kIdent)) &&
          AtAhead(2, TokenKind::kColon);
      if (at_header) {
        Next();
        SurfaceUnit unit;
        unit.context = Cur().text;
        unit.context_is_variable = At(TokenKind::kVar);
        Next();
        Next();  // ':'
        units.push_back(std::move(unit));
        continue;
      }
      LB_ASSIGN_OR_RETURN(Rule rule, ParseSurfaceClause());
      units.back().rules.push_back(std::move(rule));
    }
    // Drop an empty header-less prefix.
    if (units.size() > 1 && units.front().rules.empty()) {
      units.erase(units.begin());
    }
    return units;
  }

  Result<Rule> ParseSurfaceClause() {
    Rule rule;
    if (At(TokenKind::kIdent) && AtAhead(1, TokenKind::kColon)) {
      rule.label = Cur().text;
      Next();
      Next();
    }
    // Heads: atom [@ dest] (, atom [@ dest])*
    while (true) {
      LB_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
      if (lit.negated) return Error("negation is not allowed in heads");
      if (At(TokenKind::kAt)) {
        Next();
        LB_ASSIGN_OR_RETURN(Term dest, ParseTerm());
        rule.heads.push_back(MakeSaysAtom(Term::Me(), std::move(dest),
                                          std::move(lit.atom)));
      } else {
        rule.heads.push_back(std::move(lit.atom));
      }
      if (!At(TokenKind::kComma)) break;
      Next();
    }
    if (At(TokenKind::kDot)) {
      Next();
      return rule;
    }
    if (!At(TokenKind::kColonDash) && !At(TokenKind::kArrowLeft)) {
      return Error("expected ':-', '<-' or '.'");
    }
    Next();
    if (At(TokenKind::kIdent) && Cur().text == "agg") {
      LB_ASSIGN_OR_RETURN(rule.aggregate, ParseAggregate());
    }
    // Body: [!] literal | <prin> says atom, comma-separated.
    while (true) {
      bool negated = false;
      if (At(TokenKind::kBang)) {
        negated = true;
        Next();
      }
      bool says_form =
          (At(TokenKind::kVar) || At(TokenKind::kIdent)) &&
          AtAhead(1, TokenKind::kIdent) && Ahead(1).text == "says";
      if (says_form) {
        Term prin = At(TokenKind::kVar) ? Term::Variable(Cur().text)
                    : Cur().text == "me"
                        ? Term::Me()
                        : Term::Constant(Value::Sym(Cur().text));
        Next();
        Next();  // 'says'
        LB_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
        if (lit.negated) return Error("'says' atom cannot be negated here");
        rule.body.push_back(Literal{
            MakeSaysAtom(std::move(prin), Term::Me(), std::move(lit.atom)),
            negated});
      } else {
        LB_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
        lit.negated = lit.negated || negated;
        rule.body.push_back(std::move(lit));
      }
      if (At(TokenKind::kComma)) {
        Next();
        continue;
      }
      break;
    }
    LB_RETURN_IF_ERROR(Expect(TokenKind::kDot));
    return rule;
  }

  // says(<from>, <to>, [| atom. |])
  static Atom MakeSaysAtom(Term from, Term to, Atom payload) {
    Rule quoted;
    quoted.heads.push_back(std::move(payload));
    Atom says;
    says.predicate = "says";
    says.args.push_back(std::move(from));
    says.args.push_back(std::move(to));
    says.args.push_back(Term::Constant(
        Value::CodeRule(std::make_shared<const Rule>(std::move(quoted)))));
    return says;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Ahead(size_t n) const {
    size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool At(TokenKind kind) const { return Cur().kind == kind; }
  bool AtAhead(size_t n, TokenKind kind) const {
    return Ahead(n).kind == kind;
  }
  void Next() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Error(std::string msg) const {
    return ParseError(util::StrCat(msg, " at line ", Cur().line, " column ",
                                   Cur().column));
  }

  Status Expect(TokenKind kind) {
    if (!At(kind)) {
      return Error(util::StrCat("expected ", TokenKindName(kind), ", got ",
                                TokenKindName(Cur().kind)));
    }
    Next();
    return util::OkStatus();
  }

  // ---- formulas -----------------------------------------------------------

  Result<Formula> ParseFormula() { return ParseOr(); }

  Result<Formula> ParseOr() {
    LB_ASSIGN_OR_RETURN(Formula first, ParseAnd());
    if (!At(TokenKind::kSemi)) return first;
    std::vector<Formula> children;
    children.push_back(std::move(first));
    while (At(TokenKind::kSemi)) {
      Next();
      LB_ASSIGN_OR_RETURN(Formula next, ParseAnd());
      children.push_back(std::move(next));
    }
    return Formula::Node(Formula::Kind::kOr, std::move(children));
  }

  Result<Formula> ParseAnd() {
    LB_ASSIGN_OR_RETURN(Formula first, ParseUnary());
    if (!At(TokenKind::kComma)) return first;
    std::vector<Formula> children;
    children.push_back(std::move(first));
    while (At(TokenKind::kComma)) {
      Next();
      LB_ASSIGN_OR_RETURN(Formula next, ParseUnary());
      children.push_back(std::move(next));
    }
    return Formula::Node(Formula::Kind::kAnd, std::move(children));
  }

  Result<Formula> ParseUnary() {
    if (At(TokenKind::kBang)) {
      Next();
      LB_ASSIGN_OR_RETURN(Formula inner, ParseUnary());
      std::vector<Formula> ch;
      ch.push_back(std::move(inner));
      return Formula::Node(Formula::Kind::kNot, std::move(ch));
    }
    if (At(TokenKind::kLParen)) {
      // Formula grouping. (A leading '(' never starts a term in this
      // dialect; parenthesized arithmetic may only appear after an operand.)
      Next();
      LB_ASSIGN_OR_RETURN(Formula inner, ParseOr());
      LB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return inner;
    }
    LB_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
    return Formula::Lit(std::move(lit));
  }

  // ---- literals and atoms -------------------------------------------------

  bool AtComparison() const {
    switch (Cur().kind) {
      case TokenKind::kEq:
      case TokenKind::kNeq:
      case TokenKind::kLt:
      case TokenKind::kLe:
      case TokenKind::kGt:
      case TokenKind::kGe:
        return true;
      default:
        return false;
    }
  }

  static const char* ComparisonName(TokenKind kind) {
    switch (kind) {
      case TokenKind::kEq: return "=";
      case TokenKind::kNeq: return "!=";
      case TokenKind::kLt: return "<";
      case TokenKind::kLe: return "<=";
      case TokenKind::kGt: return ">";
      case TokenKind::kGe: return ">=";
      default: return "?";
    }
  }

  Result<Literal> ParseLiteral() {
    // Predicate atom: IDENT '(' or IDENT '[' key ']' '('.
    if (At(TokenKind::kIdent) && Cur().text != "me") {
      if (AtAhead(1, TokenKind::kLParen) || AtAhead(1, TokenKind::kLBracket)) {
        LB_ASSIGN_OR_RETURN(Atom atom, ParsePredicateAtom());
        return Literal{std::move(atom), false};
      }
    }
    // Meta-functor atom VAR '(': P(T*).
    if (At(TokenKind::kVar) && AtAhead(1, TokenKind::kLParen)) {
      LB_ASSIGN_OR_RETURN(Atom atom, ParseMetaFunctorAtom());
      return Literal{std::move(atom), false};
    }
    // Otherwise a term, then either comparison, star-atom, or meta atom.
    LB_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    if (AtComparison()) {
      Atom atom;
      atom.predicate = ComparisonName(Cur().kind);
      Next();
      LB_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
      atom.args.push_back(std::move(lhs));
      atom.args.push_back(std::move(rhs));
      return Literal{std::move(atom), false};
    }
    if (lhs.kind == Term::Kind::kStarVar) {
      // A* as an atom position: starred meta atom.
      Atom atom;
      atom.predicate = lhs.var;
      atom.meta_atom = true;
      atom.star = true;
      return Literal{std::move(atom), false};
    }
    if (lhs.is_variable()) {
      // Bare meta atom (quoted-code patterns like `A <- ...`).
      Atom atom;
      atom.predicate = lhs.var;
      atom.meta_atom = true;
      return Literal{std::move(atom), false};
    }
    return Error("expected an atom or comparison");
  }

  Result<Atom> ParsePredicateAtom() {
    Atom atom;
    atom.predicate = Cur().text;
    Next();
    if (At(TokenKind::kLBracket)) {
      Next();
      LB_ASSIGN_OR_RETURN(Term key, ParseTerm());
      LB_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      // `int[64]` is the paper's 64-bit integer type, not a partition.
      if (atom.predicate == "int" && key.is_constant() &&
          key.value.kind() == ValueKind::kInt && key.value.AsInt() == 64) {
        atom.predicate = "int64";
      } else {
        atom.partition = std::make_shared<Term>(std::move(key));
      }
    }
    LB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    if (!At(TokenKind::kRParen)) {
      while (true) {
        LB_ASSIGN_OR_RETURN(Term arg, ParseTerm());
        atom.args.push_back(std::move(arg));
        if (!At(TokenKind::kComma)) break;
        Next();
      }
    }
    LB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return atom;
  }

  Result<Atom> ParseMetaFunctorAtom() {
    Atom atom;
    atom.predicate = Cur().text;
    atom.meta_functor = true;
    Next();
    LB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    if (!At(TokenKind::kRParen)) {
      while (true) {
        LB_ASSIGN_OR_RETURN(Term arg, ParseTerm());
        atom.args.push_back(std::move(arg));
        if (!At(TokenKind::kComma)) break;
        Next();
      }
    }
    LB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return atom;
  }

  // ---- terms ---------------------------------------------------------------

  Result<Term> ParseTerm() { return ParseAdditive(); }

  Result<Term> ParseAdditive() {
    LB_ASSIGN_OR_RETURN(Term lhs, ParseMultiplicative());
    while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      char op = At(TokenKind::kPlus) ? '+' : '-';
      Next();
      LB_ASSIGN_OR_RETURN(Term rhs, ParseMultiplicative());
      lhs = Term::Expr(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  bool StartsTerm(const Token& tok) const {
    switch (tok.kind) {
      case TokenKind::kIdent:
      case TokenKind::kVar:
      case TokenKind::kUnderscore:
      case TokenKind::kInt:
      case TokenKind::kFloat:
      case TokenKind::kString:
      case TokenKind::kQuoteOpen:
      case TokenKind::kLParen:
        return true;
      default:
        return false;
    }
  }

  Result<Term> ParseMultiplicative() {
    LB_ASSIGN_OR_RETURN(Term lhs, ParsePrimary());
    while (true) {
      if (At(TokenKind::kSlash)) {
        Next();
        LB_ASSIGN_OR_RETURN(Term rhs, ParsePrimary());
        lhs = Term::Expr('/', std::move(lhs), std::move(rhs));
      } else if (At(TokenKind::kStar) && StartsTerm(Ahead(1))) {
        // 'X * Y' multiplication; 'T*' (star followed by a delimiter) is a
        // Kleene-star pattern handled in ParsePrimary.
        Next();
        LB_ASSIGN_OR_RETURN(Term rhs, ParsePrimary());
        lhs = Term::Expr('*', std::move(lhs), std::move(rhs));
      } else {
        break;
      }
    }
    return lhs;
  }

  Result<Term> ParsePrimary() {
    switch (Cur().kind) {
      case TokenKind::kInt: {
        Term t = Term::Constant(Value::Int(Cur().int_value));
        Next();
        return t;
      }
      case TokenKind::kFloat: {
        Term t = Term::Constant(Value::Double(Cur().float_value));
        Next();
        return t;
      }
      case TokenKind::kString: {
        Term t = Term::Constant(Value::Str(Cur().text));
        Next();
        return t;
      }
      case TokenKind::kMinus: {
        Next();
        LB_ASSIGN_OR_RETURN(Term inner, ParsePrimary());
        if (inner.is_constant() && inner.value.kind() == ValueKind::kInt) {
          return Term::Constant(Value::Int(-inner.value.AsInt()));
        }
        if (inner.is_constant() && inner.value.kind() == ValueKind::kDouble) {
          return Term::Constant(Value::Double(-inner.value.AsDouble()));
        }
        return Term::Expr('-', Term::Constant(Value::Int(0)),
                          std::move(inner));
      }
      case TokenKind::kUnderscore: {
        Next();
        return Term::Variable(util::StrCat("_G", anon_counter_++));
      }
      case TokenKind::kVar: {
        std::string name = Cur().text;
        Next();
        if (At(TokenKind::kStar) && !StartsTerm(Ahead(1))) {
          Next();
          return Term::StarVar(std::move(name));
        }
        return Term::Variable(std::move(name));
      }
      case TokenKind::kIdent: {
        std::string name = Cur().text;
        if (name == "me") {
          Next();
          return Term::Me();
        }
        Next();
        if (At(TokenKind::kLBracket)) {
          // Partition reference in term position: export[P].
          Next();
          LB_ASSIGN_OR_RETURN(Term key, ParseTerm());
          LB_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
          return Term::PartRef(std::move(name), std::move(key));
        }
        return Term::Constant(Value::Sym(std::move(name)));
      }
      case TokenKind::kQuoteOpen:
        return ParseQuotedCode();
      case TokenKind::kLParen: {
        Next();
        LB_ASSIGN_OR_RETURN(Term inner, ParseAdditive());
        LB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return inner;
      }
      default:
        return Error(util::StrCat("expected a term, got ",
                                  TokenKindName(Cur().kind)));
    }
  }

  /// `[| clause |]` — the clause may be a rule, a fact (trailing dot
  /// optional for a single atom), and may itself contain quoted code.
  Result<Term> ParseQuotedCode() {
    LB_RETURN_IF_ERROR(Expect(TokenKind::kQuoteOpen));
    LB_ASSIGN_OR_RETURN(Formula head, ParseFormula());
    Rule rule;
    LB_ASSIGN_OR_RETURN(rule.heads, FormulaToHeads(head));
    if (At(TokenKind::kArrowLeft)) {
      Next();
      if (At(TokenKind::kIdent) && Cur().text == "agg") {
        LB_ASSIGN_OR_RETURN(rule.aggregate, ParseAggregate());
      }
      LB_ASSIGN_OR_RETURN(Formula body, ParseFormula());
      auto alts = ToDnf(ToNnf(body, false));
      if (alts.size() != 1) {
        return Error("quoted code may not contain disjunction");
      }
      rule.body = std::move(alts[0]);
    }
    if (At(TokenKind::kDot)) Next();
    LB_RETURN_IF_ERROR(Expect(TokenKind::kQuoteClose));
    return Term::Constant(
        Value::CodeRule(std::make_shared<const Rule>(std::move(rule))));
  }

  Result<Aggregate> ParseAggregate() {
    // agg<<N = count(U)>>
    Next();  // 'agg'
    LB_RETURN_IF_ERROR(Expect(TokenKind::kAggOpen));
    if (!At(TokenKind::kVar)) return Error("expected aggregate result var");
    Aggregate agg;
    agg.result_var = Cur().text;
    Next();
    LB_RETURN_IF_ERROR(Expect(TokenKind::kEq));
    if (!At(TokenKind::kIdent)) return Error("expected aggregate function");
    std::string fn = Cur().text;
    Next();
    if (fn == "count") {
      agg.fn = Aggregate::Fn::kCount;
    } else if (fn == "total") {
      agg.fn = Aggregate::Fn::kTotal;
    } else if (fn == "min") {
      agg.fn = Aggregate::Fn::kMin;
    } else if (fn == "max") {
      agg.fn = Aggregate::Fn::kMax;
    } else {
      return Error(util::StrCat("unknown aggregate function '", fn, "'"));
    }
    LB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    if (!At(TokenKind::kVar)) return Error("expected aggregate input var");
    agg.input_var = Cur().text;
    Next();
    LB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    LB_RETURN_IF_ERROR(Expect(TokenKind::kAggClose));
    return agg;
  }

  /// Head formulas must be plain conjunctions of positive atoms.
  Result<std::vector<Atom>> FormulaToHeads(const Formula& f) {
    std::vector<Atom> heads;
    Status st = CollectHeads(f, &heads);
    if (!st.ok()) return st;
    return heads;
  }

  Status CollectHeads(const Formula& f, std::vector<Atom>* out) {
    switch (f.kind) {
      case Formula::Kind::kLit:
        if (f.lit.negated) return Error("negation is not allowed in heads");
        out->push_back(f.lit.atom);
        return util::OkStatus();
      case Formula::Kind::kAnd:
        for (const Formula& c : f.children) {
          LB_RETURN_IF_ERROR(CollectHeads(c, out));
        }
        return util::OkStatus();
      default:
        return Error("heads must be conjunctions of atoms");
    }
  }

  static std::string PrintConstraintSource(const Constraint& c) {
    return PrintConstraint(c);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int anon_counter_ = 0;
};

}  // namespace

Result<std::vector<ParsedClause>> ParseProgram(std::string_view source) {
  LB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseProgram();
}

Result<Rule> ParseRuleText(std::string_view source) {
  LB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseSingleRule();
}

Result<Atom> ParseAtomText(std::string_view source) {
  LB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseSingleAtom();
}

Result<Term> ParseTermText(std::string_view source) {
  LB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseSingleTerm();
}

Result<std::vector<SurfaceUnit>> ParseSurfaceProgram(std::string_view source) {
  LB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseSurface();
}

}  // namespace lbtrust::datalog
