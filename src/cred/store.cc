#include "cred/store.h"

#include <set>

#include "util/strings.h"

namespace lbtrust::cred {

using util::Result;

std::string CredentialStore::Put(Credential cred) {
  std::string hash = CredentialHash(cred);
  ++stats_.puts;
  auto [it, inserted] = by_hash_.emplace(hash, std::move(cred));
  (void)it;
  if (!inserted) ++stats_.dedup_hits;
  return hash;
}

void CredentialStore::InsertForReplication(std::string hash,
                                           Credential cred) {
  ++stats_.puts;
  auto [it, inserted] = by_hash_.emplace(std::move(hash), std::move(cred));
  (void)it;
  if (!inserted) ++stats_.dedup_hits;
}

const Credential* CredentialStore::Get(const std::string& hash) const {
  auto it = by_hash_.find(hash);
  return it == by_hash_.end() ? nullptr : &it->second;
}

bool CredentialStore::Contains(const std::string& hash) const {
  return by_hash_.count(hash) > 0;
}

Result<bool> CredentialStore::VerifySignature(const std::string& hash,
                                              const crypto::RsaPublicKey& key) {
  auto it = by_hash_.find(hash);
  if (it == by_hash_.end()) {
    return util::NotFound(util::StrCat("no credential ", hash));
  }
  std::string cache_key =
      util::StrCat(hash, "|", crypto::KeyFingerprint(key));
  auto cached = verify_cache_.find(cache_key);
  if (cached != verify_cache_.end()) {
    ++stats_.verify_cache_hits;
    return cached->second;
  }
  bool ok = VerifyCredentialSignature(it->second, key);
  ++stats_.rsa_verifies;
  verify_cache_.emplace(std::move(cache_key), ok);
  return ok;
}

Result<std::vector<std::string>> CredentialStore::ResolveClosure(
    const std::string& hash) const {
  std::vector<std::string> out;
  std::set<std::string> done;
  std::set<std::string> on_path;  // DFS stack membership, for cycle checks
  // Explicit stack; a frame re-surfaces after its links to leave `on_path`.
  struct Frame {
    std::string hash;
    bool expanded = false;
  };
  std::vector<Frame> stack{{hash, false}};
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    if (frame.expanded) {
      on_path.erase(frame.hash);
      continue;
    }
    if (done.count(frame.hash) > 0) continue;
    if (on_path.count(frame.hash) > 0) {
      return util::FailedPrecondition(
          util::StrCat("credential link cycle through ", frame.hash));
    }
    const Credential* cred = Get(frame.hash);
    if (cred == nullptr) {
      return util::NotFound(
          util::StrCat("missing linked credential ", frame.hash));
    }
    done.insert(frame.hash);
    out.push_back(frame.hash);
    on_path.insert(frame.hash);
    stack.push_back({frame.hash, true});
    for (const std::string& link : cred->links) {
      if (on_path.count(link) > 0) {
        return util::FailedPrecondition(
            util::StrCat("credential link cycle through ", link));
      }
      if (done.count(link) == 0) stack.push_back({link, false});
    }
  }
  return out;
}

bool CredentialStore::Erase(const std::string& hash) {
  auto it = by_hash_.find(hash);
  if (it == by_hash_.end()) return false;
  DropVerdicts(hash);
  by_hash_.erase(it);
  return true;
}

size_t CredentialStore::SweepExpired(int64_t now) {
  size_t removed = 0;
  for (auto it = by_hash_.begin(); it != by_hash_.end();) {
    if (it->second.ValidAt(now)) {
      ++it;
      continue;
    }
    DropVerdicts(it->first);
    it = by_hash_.erase(it);
    ++removed;
  }
  stats_.swept += removed;
  return removed;
}

void CredentialStore::DropVerdicts(const std::string& hash) {
  // Cached verdicts are keyed "<hash>|<fp>"; '|' + 1 == '}' bounds the
  // half-open key range for this hash.
  auto lo = verify_cache_.lower_bound(hash + "|");
  auto hi = verify_cache_.lower_bound(hash + "}");
  verify_cache_.erase(lo, hi);
}

}  // namespace lbtrust::cred
