#ifndef LBTRUST_CRED_CREDENTIAL_H_
#define LBTRUST_CRED_CREDENTIAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/rsa.h"
#include "util/status.h"

namespace lbtrust::cred {

/// A credential is the unit of portable evidence between trust domains: a
/// signed bundle of logic statements (facts and rules in the engine's
/// program-text syntax) plus *links* — content hashes of other credentials
/// this one builds on (SAFE-style linked credential sets). Credentials are
/// content-addressed: `Hash()` is the SHA-256 of the full serialized form,
/// so identical credentials deduplicate and links are tamper-evident.
///
/// ## Wire format (versioned, length-prefixed)
///
///   credential := "LBC1" field*            (exactly 7 fields, in order)
///   field      := <decimal-byte-length> ':' <bytes>
///
///   field 1  issuer       principal name (symbol text)
///   field 2  key          fingerprint of the issuer's RSA public key
///                         (crypto::KeyFingerprint — 16 lowercase hex chars)
///   field 3  nbf          not-before, decimal seconds (0 = unbounded)
///   field 4  exp          not-after,  decimal seconds (0 = unbounded)
///   field 5  links        comma-joined SHA-256 hex hashes of linked
///                         credentials ("" = none)
///   field 6  payload      program text: facts/rules said by the issuer
///   field 7  sig          lowercase hex RSA signature (absent in the
///                         canonical pre-signature form)
///
/// The signature covers SHA-256(fields 1..6 serialized as above, including
/// the "LBC1" magic): `CanonicalBytes()`. Signing is RSA-SHA256 layered on
/// the engine's EMSA-PKCS1 primitive — the message handed to crypto::RsaSign
/// is the 32-byte SHA-256 digest of the canonical bytes.
///
/// A *bundle* ships a root credential together with its transitive link
/// closure (root first, dependencies after, deduplicated):
///
///   bundle := "LBCB1" <decimal-count> ':' field*   (one field per
///                                                   serialized credential)
struct Credential {
  std::string issuer;           ///< principal name of the signer
  std::string key_fingerprint;  ///< crypto::KeyFingerprint of signer's key
  int64_t not_before = 0;       ///< validity start, seconds (0 = unbounded)
  int64_t not_after = 0;        ///< validity end, seconds (0 = unbounded)
  std::vector<std::string> links;  ///< SHA-256 hex hashes of prerequisites
  std::string payload;             ///< program text (facts and rules)
  std::string signature;           ///< raw RSA signature bytes

  /// True iff `now` falls inside [not_before, not_after] (either bound may
  /// be 0 = unbounded).
  bool ValidAt(int64_t now) const {
    return (not_before == 0 || now >= not_before) &&
           (not_after == 0 || now <= not_after);
  }
};

/// The byte string the signature covers (everything except the signature).
std::string CanonicalBytes(const Credential& cred);

/// Full wire form including the signature field.
std::string SerializeCredential(const Credential& cred);

/// Parses a serialized credential. Never crashes or over-reads: truncated
/// input, oversized length prefixes and malformed fields return a status.
util::Result<Credential> ParseCredential(std::string_view text);

/// Content address: lowercase SHA-256 hex of SerializeCredential(cred).
/// (RSA-PKCS1 signatures are deterministic, so issuing identical content
/// twice yields the identical hash.)
std::string CredentialHash(const Credential& cred);

/// Signs the canonical bytes with the issuer's private key, filling
/// `cred->signature`.
util::Status SignCredential(Credential* cred,
                            const crypto::RsaPrivateKey& key);

/// Verifies the signature against the canonical bytes. Pure RSA check; the
/// caller is responsible for binding `key` to `cred.issuer` /
/// `cred.key_fingerprint`.
bool VerifyCredentialSignature(const Credential& cred,
                               const crypto::RsaPublicKey& key);

/// Bundle (de)serialization; see the wire-format comment above.
std::string SerializeBundle(const std::vector<Credential>& credentials);
util::Result<std::vector<Credential>> ParseBundle(std::string_view text);

}  // namespace lbtrust::cred

#endif  // LBTRUST_CRED_CREDENTIAL_H_
