#ifndef LBTRUST_CRED_IMPORTER_H_
#define LBTRUST_CRED_IMPORTER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "cred/store.h"
#include "datalog/workspace.h"
#include "util/status.h"

namespace lbtrust::cred {

/// Maps (issuer principal, key fingerprint) to the issuer's public key, or
/// nullptr when the receiving principal does not bind that key to that
/// issuer. This is the importer's trust anchor: the host (TrustRuntime)
/// answers from its KeyStore + peer registrations.
using KeyResolver = std::function<const crypto::RsaPublicKey*(
    const std::string& issuer, const std::string& key_fingerprint)>;

struct ImportStats {
  size_t credentials = 0;  ///< credentials in the imported closure
  size_t clauses = 0;      ///< says-facts staged into the transaction
};

/// Materializes a verified credential set into a workspace.
///
/// The closure of `root_hash` is resolved from `store` (missing links and
/// link cycles reject), every member is checked for validity at `now` and
/// for a good signature under the resolver-bound key (memoized in the
/// store), and only then is the evidence applied: each clause C of each
/// credential payload becomes a speaker-attributed fact
///
///   says(issuer, me, [| C |])
///
/// — exactly what a local `Say`/`AddFactAs` sequence by the issuer would
/// have staged — all inside ONE Workspace::Transaction, so a whole
/// credential set commits with a single (delta-aware) fixpoint and the
/// receiving policy decides activation through its says/delegation rules.
///
/// Any failure (resolution, validity, signature, payload parse) surfaces
/// before the transaction commits: a rejected import never mutates the
/// workspace.
util::Result<ImportStats> ImportCredentialSet(const std::string& root_hash,
                                              CredentialStore* store,
                                              datalog::Workspace* workspace,
                                              const KeyResolver& resolver,
                                              int64_t now);

}  // namespace lbtrust::cred

#endif  // LBTRUST_CRED_IMPORTER_H_
