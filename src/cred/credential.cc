#include "cred/credential.h"

#include <charconv>

#include "crypto/sha256.h"
#include "util/strings.h"

namespace lbtrust::cred {

using util::Result;
using util::Status;

namespace {

constexpr std::string_view kCredMagic = "LBC1";
constexpr std::string_view kBundleMagic = "LBCB1";

void AppendField(std::string* out, std::string_view bytes) {
  util::AppendLengthPrefixed(out, bytes);
}

/// Reads one length-prefixed field off the front of `*text` (shared codec:
/// util::ReadLengthPrefixed validates the length against the remaining
/// input before any allocation).
Status ReadField(std::string_view* text, std::string_view* out) {
  if (!util::ReadLengthPrefixed(text, out)) {
    return util::ParseError("credential field: malformed length prefix");
  }
  return util::OkStatus();
}

Status ReadInt64Field(std::string_view* text, int64_t* out) {
  std::string_view field;
  LB_RETURN_IF_ERROR(ReadField(text, &field));
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), *out);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    return util::ParseError("credential field: bad integer");
  }
  return util::OkStatus();
}

bool IsHexHash(std::string_view s) {
  if (s.size() != crypto::Sha256::kDigestSize * 2) return false;
  for (char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

}  // namespace

std::string CanonicalBytes(const Credential& cred) {
  std::string out(kCredMagic);
  AppendField(&out, cred.issuer);
  AppendField(&out, cred.key_fingerprint);
  AppendField(&out, std::to_string(cred.not_before));
  AppendField(&out, std::to_string(cred.not_after));
  AppendField(&out, util::Join(cred.links, ","));
  AppendField(&out, cred.payload);
  return out;
}

std::string SerializeCredential(const Credential& cred) {
  std::string out = CanonicalBytes(cred);
  AppendField(&out, util::HexEncode(cred.signature));
  return out;
}

Result<Credential> ParseCredential(std::string_view text) {
  if (!util::StartsWith(text, kCredMagic)) {
    return util::ParseError("not a credential (missing LBC1 magic)");
  }
  text.remove_prefix(kCredMagic.size());
  Credential cred;
  std::string_view field;
  LB_RETURN_IF_ERROR(ReadField(&text, &field));
  cred.issuer = std::string(field);
  if (cred.issuer.empty()) {
    return util::ParseError("credential: empty issuer");
  }
  LB_RETURN_IF_ERROR(ReadField(&text, &field));
  cred.key_fingerprint = std::string(field);
  LB_RETURN_IF_ERROR(ReadInt64Field(&text, &cred.not_before));
  LB_RETURN_IF_ERROR(ReadInt64Field(&text, &cred.not_after));
  LB_RETURN_IF_ERROR(ReadField(&text, &field));
  if (!field.empty()) {
    for (const std::string& link : util::Split(field, ',')) {
      if (!IsHexHash(link)) {
        return util::ParseError("credential: malformed link hash");
      }
      cred.links.push_back(link);
    }
  }
  LB_RETURN_IF_ERROR(ReadField(&text, &field));
  cred.payload = std::string(field);
  LB_RETURN_IF_ERROR(ReadField(&text, &field));
  if (!util::HexDecode(field, &cred.signature)) {
    return util::ParseError("credential: signature is not hex");
  }
  if (!text.empty()) {
    return util::ParseError("credential: trailing bytes");
  }
  return cred;
}

std::string CredentialHash(const Credential& cred) {
  return util::HexEncode(crypto::Sha256::Digest(SerializeCredential(cred)));
}

Status SignCredential(Credential* cred, const crypto::RsaPrivateKey& key) {
  std::string digest = crypto::Sha256::Digest(CanonicalBytes(*cred));
  LB_ASSIGN_OR_RETURN(cred->signature, crypto::RsaSign(key, digest));
  return util::OkStatus();
}

bool VerifyCredentialSignature(const Credential& cred,
                               const crypto::RsaPublicKey& key) {
  std::string digest = crypto::Sha256::Digest(CanonicalBytes(cred));
  return crypto::RsaVerify(key, digest, cred.signature);
}

std::string SerializeBundle(const std::vector<Credential>& credentials) {
  std::string out(kBundleMagic);
  out.append(std::to_string(credentials.size()));
  out.push_back(':');
  for (const Credential& cred : credentials) {
    AppendField(&out, SerializeCredential(cred));
  }
  return out;
}

Result<std::vector<Credential>> ParseBundle(std::string_view text) {
  if (!util::StartsWith(text, kBundleMagic)) {
    return util::ParseError("not a credential bundle (missing LBCB1 magic)");
  }
  text.remove_prefix(kBundleMagic.size());
  size_t sep = text.find(':');
  if (sep == std::string_view::npos || sep == 0 || sep > 9) {
    return util::ParseError("bundle: missing count");
  }
  size_t count = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + sep, count);
  if (ec != std::errc() || ptr != text.data() + sep) {
    return util::ParseError("bundle: bad count");
  }
  text.remove_prefix(sep + 1);
  // Each serialized credential needs at least the magic + 7 "0:" fields.
  if (count > text.size()) {
    return util::ParseError("bundle: count exceeds input size");
  }
  std::vector<Credential> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string_view field;
    LB_RETURN_IF_ERROR(ReadField(&text, &field));
    LB_ASSIGN_OR_RETURN(Credential cred, ParseCredential(field));
    out.push_back(std::move(cred));
  }
  if (!text.empty()) {
    return util::ParseError("bundle: trailing bytes");
  }
  return out;
}

}  // namespace lbtrust::cred
