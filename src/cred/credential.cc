#include "cred/credential.h"

#include <charconv>
#include <unordered_map>

#include "crypto/sha256.h"
#include "util/strings.h"

namespace lbtrust::cred {

using util::Result;
using util::Status;

namespace {

constexpr std::string_view kCredMagic = "LBC1";
constexpr std::string_view kBundleMagic = "LBCB1";
constexpr std::string_view kBundleMagicV2 = "LBCB2";

void AppendField(std::string* out, std::string_view bytes) {
  util::AppendLengthPrefixed(out, bytes);
}

/// Reads one length-prefixed field off the front of `*text` (shared codec:
/// util::ReadLengthPrefixed validates the length against the remaining
/// input before any allocation).
Status ReadField(std::string_view* text, std::string_view* out) {
  if (!util::ReadLengthPrefixed(text, out)) {
    return util::ParseError("credential field: malformed length prefix");
  }
  return util::OkStatus();
}

Status ReadInt64Field(std::string_view* text, int64_t* out) {
  std::string_view field;
  LB_RETURN_IF_ERROR(ReadField(text, &field));
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), *out);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    return util::ParseError("credential field: bad integer");
  }
  return util::OkStatus();
}

bool IsHexHash(std::string_view s) {
  if (s.size() != crypto::Sha256::kDigestSize * 2) return false;
  for (char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

}  // namespace

std::string CanonicalBytes(const Credential& cred) {
  std::string out(kCredMagic);
  AppendField(&out, cred.issuer);
  AppendField(&out, cred.key_fingerprint);
  AppendField(&out, std::to_string(cred.not_before));
  AppendField(&out, std::to_string(cred.not_after));
  AppendField(&out, util::Join(cred.links, ","));
  AppendField(&out, cred.payload);
  return out;
}

std::string SerializeCredential(const Credential& cred) {
  std::string out = CanonicalBytes(cred);
  AppendField(&out, util::HexEncode(cred.signature));
  return out;
}

Result<Credential> ParseCredential(std::string_view text) {
  if (!util::StartsWith(text, kCredMagic)) {
    return util::ParseError("not a credential (missing LBC1 magic)");
  }
  text.remove_prefix(kCredMagic.size());
  Credential cred;
  std::string_view field;
  LB_RETURN_IF_ERROR(ReadField(&text, &field));
  cred.issuer = std::string(field);
  if (cred.issuer.empty()) {
    return util::ParseError("credential: empty issuer");
  }
  LB_RETURN_IF_ERROR(ReadField(&text, &field));
  cred.key_fingerprint = std::string(field);
  LB_RETURN_IF_ERROR(ReadInt64Field(&text, &cred.not_before));
  LB_RETURN_IF_ERROR(ReadInt64Field(&text, &cred.not_after));
  LB_RETURN_IF_ERROR(ReadField(&text, &field));
  if (!field.empty()) {
    for (const std::string& link : util::Split(field, ',')) {
      if (!IsHexHash(link)) {
        return util::ParseError("credential: malformed link hash");
      }
      cred.links.push_back(link);
    }
  }
  LB_RETURN_IF_ERROR(ReadField(&text, &field));
  cred.payload = std::string(field);
  LB_RETURN_IF_ERROR(ReadField(&text, &field));
  if (!util::HexDecode(field, &cred.signature)) {
    return util::ParseError("credential: signature is not hex");
  }
  if (!text.empty()) {
    return util::ParseError("credential: trailing bytes");
  }
  return cred;
}

std::string CredentialHash(const Credential& cred) {
  return util::HexEncode(crypto::Sha256::Digest(SerializeCredential(cred)));
}

Status SignCredential(Credential* cred, const crypto::RsaPrivateKey& key) {
  std::string digest = crypto::Sha256::Digest(CanonicalBytes(*cred));
  LB_ASSIGN_OR_RETURN(cred->signature, crypto::RsaSign(key, digest));
  return util::OkStatus();
}

bool VerifyCredentialSignature(const Credential& cred,
                               const crypto::RsaPublicKey& key) {
  std::string digest = crypto::Sha256::Digest(CanonicalBytes(cred));
  return crypto::RsaVerify(key, digest, cred.signature);
}

namespace {

/// Reads a "<decimal>:" count (9-digit cap — bundles never need more;
/// shared framing via util::ReadDecimalCount).
Status ReadBundleCount(std::string_view* text, size_t* out,
                       const char* what) {
  if (!util::ReadDecimalCount(text, out, 9)) {
    return util::ParseError(util::StrCat("bundle: bad ", what));
  }
  return util::OkStatus();
}

Result<std::vector<Credential>> ParseBundleV1(std::string_view text) {
  size_t count = 0;
  LB_RETURN_IF_ERROR(ReadBundleCount(&text, &count, "count"));
  // Each serialized credential needs at least the magic + 7 "0:" fields.
  if (count > text.size()) {
    return util::ParseError("bundle: count exceeds input size");
  }
  std::vector<Credential> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string_view field;
    LB_RETURN_IF_ERROR(ReadField(&text, &field));
    LB_ASSIGN_OR_RETURN(Credential cred, ParseCredential(field));
    out.push_back(std::move(cred));
  }
  if (!text.empty()) {
    return util::ParseError("bundle: trailing bytes");
  }
  return out;
}

Result<std::vector<Credential>> ParseBundleV2(std::string_view text) {
  // Records copy dictionary strings, so a few record bytes can reference a
  // large dictionary entry many times; cap the total materialized bytes so
  // a hostile bundle cannot amplify a small input into gigabytes of copies
  // before any signature is checked. Generous for legitimate linked sets
  // (a 64 MiB expansion is far beyond any real closure).
  constexpr size_t kMaxMaterializedBytes = size_t{64} << 20;
  size_t materialized = 0;
  auto charge = [&materialized](size_t bytes) {
    materialized += bytes;
    return materialized <= kMaxMaterializedBytes;
  };
  size_t dict_count = 0;
  LB_RETURN_IF_ERROR(ReadBundleCount(&text, &dict_count, "dictionary count"));
  // Each dictionary entry is a length-prefixed field, at least "0:".
  if (dict_count > text.size()) {
    return util::ParseError("bundle: dictionary count exceeds input size");
  }
  std::vector<std::string> dict;
  dict.reserve(dict_count);
  for (size_t i = 0; i < dict_count; ++i) {
    std::string_view field;
    LB_RETURN_IF_ERROR(ReadField(&text, &field));
    dict.emplace_back(field);
  }
  auto dict_at = [&](size_t idx) -> const std::string* {
    return idx < dict.size() ? &dict[idx] : nullptr;
  };
  size_t count = 0;
  LB_RETURN_IF_ERROR(ReadBundleCount(&text, &count, "count"));
  if (count > text.size()) {
    return util::ParseError("bundle: count exceeds input size");
  }
  std::vector<Credential> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Credential cred;
    size_t idx = 0;
    LB_RETURN_IF_ERROR(ReadBundleCount(&text, &idx, "issuer index"));
    const std::string* issuer = dict_at(idx);
    if (issuer == nullptr || issuer->empty()) {
      return util::ParseError("bundle: bad issuer reference");
    }
    if (!charge(issuer->size())) {
      return util::ParseError("bundle: materialized size cap exceeded");
    }
    cred.issuer = *issuer;
    LB_RETURN_IF_ERROR(ReadBundleCount(&text, &idx, "key index"));
    const std::string* key = dict_at(idx);
    if (key == nullptr) return util::ParseError("bundle: bad key reference");
    if (!charge(key->size())) {
      return util::ParseError("bundle: materialized size cap exceeded");
    }
    cred.key_fingerprint = *key;
    LB_RETURN_IF_ERROR(ReadInt64Field(&text, &cred.not_before));
    LB_RETURN_IF_ERROR(ReadInt64Field(&text, &cred.not_after));
    size_t link_count = 0;
    LB_RETURN_IF_ERROR(ReadBundleCount(&text, &link_count, "link count"));
    if (link_count > text.size()) {
      return util::ParseError("bundle: link count exceeds input size");
    }
    for (size_t l = 0; l < link_count; ++l) {
      LB_RETURN_IF_ERROR(ReadBundleCount(&text, &idx, "link index"));
      const std::string* link = dict_at(idx);
      if (link == nullptr || !IsHexHash(*link)) {
        return util::ParseError("bundle: malformed link hash");
      }
      if (!charge(link->size())) {
        return util::ParseError("bundle: materialized size cap exceeded");
      }
      cred.links.push_back(*link);
    }
    LB_RETURN_IF_ERROR(ReadBundleCount(&text, &idx, "payload index"));
    const std::string* payload = dict_at(idx);
    if (payload == nullptr) {
      return util::ParseError("bundle: bad payload reference");
    }
    if (!charge(payload->size())) {
      return util::ParseError("bundle: materialized size cap exceeded");
    }
    cred.payload = *payload;
    std::string_view sig;
    LB_RETURN_IF_ERROR(ReadField(&text, &sig));
    if (!util::HexDecode(sig, &cred.signature)) {
      return util::ParseError("bundle: signature is not hex");
    }
    out.push_back(std::move(cred));
  }
  if (!text.empty()) {
    return util::ParseError("bundle: trailing bytes");
  }
  return out;
}

}  // namespace

std::string SerializeBundle(const std::vector<Credential>& credentials) {
  // v2: a bundle-level string dictionary. Issuers, key fingerprints, link
  // hashes and payloads repeat heavily across a linked credential set (a
  // link IS another member's 64-hex hash), so each distinct string ships
  // once; records then reference dictionary indices. Signatures are unique
  // per credential and stay inline. The per-credential canonical form
  // (CanonicalBytes/SerializeCredential) is unchanged — receivers rebuild
  // it locally, so hashes and signatures are unaffected by the container.
  std::vector<std::string> dict;
  std::unordered_map<std::string, size_t> index;
  auto intern = [&](const std::string& s) -> size_t {
    auto [it, fresh] = index.try_emplace(s, dict.size());
    if (fresh) dict.push_back(s);
    return it->second;
  };
  std::string records;
  auto append_count = [](std::string* out, size_t n) {
    out->append(std::to_string(n));
    out->push_back(':');
  };
  for (const Credential& cred : credentials) {
    append_count(&records, intern(cred.issuer));
    append_count(&records, intern(cred.key_fingerprint));
    AppendField(&records, std::to_string(cred.not_before));
    AppendField(&records, std::to_string(cred.not_after));
    append_count(&records, cred.links.size());
    for (const std::string& link : cred.links) {
      append_count(&records, intern(link));
    }
    append_count(&records, intern(cred.payload));
    AppendField(&records, util::HexEncode(cred.signature));
  }
  std::string out(kBundleMagicV2);
  out.append(std::to_string(dict.size()));
  out.push_back(':');
  for (const std::string& entry : dict) AppendField(&out, entry);
  out.append(std::to_string(credentials.size()));
  out.push_back(':');
  out += records;
  return out;
}

Result<std::vector<Credential>> ParseBundle(std::string_view text) {
  if (util::StartsWith(text, kBundleMagicV2)) {
    return ParseBundleV2(text.substr(kBundleMagicV2.size()));
  }
  if (util::StartsWith(text, kBundleMagic)) {
    return ParseBundleV1(text.substr(kBundleMagic.size()));
  }
  return util::ParseError("not a credential bundle (missing LBCB magic)");
}

}  // namespace lbtrust::cred
