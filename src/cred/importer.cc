#include "cred/importer.h"

#include <memory>
#include <vector>

#include "datalog/ast.h"
#include "datalog/lint.h"
#include "datalog/parser.h"
#include "util/strings.h"

namespace lbtrust::cred {

using datalog::ParsedClause;
using datalog::Value;
using util::Result;

Result<ImportStats> ImportCredentialSet(const std::string& root_hash,
                                        CredentialStore* store,
                                        datalog::Workspace* workspace,
                                        const KeyResolver& resolver,
                                        int64_t now) {
  LB_ASSIGN_OR_RETURN(std::vector<std::string> closure,
                      store->ResolveClosure(root_hash));
  ImportStats stats;
  datalog::Transaction txn = workspace->Begin();
  for (const std::string& hash : closure) {
    const Credential* cred = store->Get(hash);
    if (!cred->ValidAt(now)) {
      txn.Abort();
      return util::FailedPrecondition(util::StrCat(
          "credential ", hash, " from '", cred->issuer,
          "' is outside its validity interval at ", now));
    }
    const crypto::RsaPublicKey* key =
        resolver(cred->issuer, cred->key_fingerprint);
    if (key == nullptr) {
      txn.Abort();
      return util::CryptoError(util::StrCat(
          "no key binding for issuer '", cred->issuer, "' with fingerprint ",
          cred->key_fingerprint));
    }
    LB_ASSIGN_OR_RETURN(bool verified, store->VerifySignature(hash, *key));
    if (!verified) {
      txn.Abort();
      return util::CryptoError(util::StrCat(
          "bad signature on credential ", hash, " from '", cred->issuer,
          "'"));
    }
    auto parsed = datalog::ParseProgram(cred->payload);
    if (!parsed.ok()) {
      txn.Abort();
      return parsed.status();
    }
    // Static analysis BEFORE anything stages: a hostile bundle carrying an
    // unsafe/unstratifiable/ill-typed program is rejected with the lint
    // diagnostic (naming the unbound variable or cycle) and zero
    // workspace/store mutation — not discovered later by a failing
    // fixpoint over partially-applied state. The payload speaks from the
    // issuer's context, so says-attribution is checked against the issuer.
    {
      datalog::LintOptions lint_opts;
      lint_opts.builtins = workspace->builtins();
      lint_opts.says_check = true;
      lint_opts.says_principal = cred->issuer;
      datalog::LintReport lint =
          datalog::LintProgram(cred->payload, cred->issuer, lint_opts);
      if (lint.has_errors()) {
        txn.Abort();
        util::Status status = lint.ToStatus();
        return util::Status(
            status.code(),
            util::StrCat("credential ", hash, " from '", cred->issuer,
                         "' carries an ill-formed program: ",
                         status.message()));
      }
    }
    for (ParsedClause& clause : *parsed) {
      if (clause.kind == ParsedClause::Kind::kConstraint) {
        txn.Abort();
        return util::InvalidArgument(util::StrCat(
            "credential ", hash, " carries a constraint; payloads may only ",
            "contain facts and rules"));
      }
      for (datalog::Rule& rule : clause.rules) {
        Value quoted = Value::CodeRule(
            std::make_shared<const datalog::Rule>(std::move(rule)));
        txn.AddFact("says", {Value::Sym(cred->issuer),
                             Value::Sym(workspace->principal()),
                             std::move(quoted)});
        ++stats.clauses;
      }
    }
    ++stats.credentials;
  }
  LB_RETURN_IF_ERROR(txn.Commit());
  return stats;
}

}  // namespace lbtrust::cred
