#ifndef LBTRUST_CRED_STORE_H_
#define LBTRUST_CRED_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cred/credential.h"
#include "util/status.h"

namespace lbtrust::cred {

/// Content-addressed credential storage with cached verification (the
/// "Certificate Linking and Caching" performance lever): credentials are
/// keyed by their SHA-256 hash, so `Put()` deduplicates structurally
/// identical evidence, and `VerifySignature()` memoizes the RSA check per
/// (credential hash, key fingerprint) — re-importing a credential set that
/// was verified before touches no public-key arithmetic at all.
class CredentialStore {
 public:
  struct Stats {
    size_t puts = 0;         ///< Put() calls
    size_t dedup_hits = 0;   ///< Put() calls that found the hash present
    size_t rsa_verifies = 0; ///< signature checks that ran RSA
    size_t verify_cache_hits = 0;  ///< signature checks served from cache
    size_t swept = 0;        ///< credentials removed by SweepExpired()
  };

  /// Inserts a credential (no signature check here) and returns its content
  /// hash. Re-inserting identical content is a cheap no-op.
  std::string Put(Credential cred);

  /// Replica-sync path: inserts under an address computed upstream instead
  /// of rehashing. A corrupt or malicious replica can feed addresses that
  /// do not match the content — which is exactly why ResolveClosure()
  /// carries cycle detection and VerifySignature() is still mandatory on
  /// import. (Honest stores never produce link cycles: a cycle would need
  /// a SHA-256 fixed point.)
  void InsertForReplication(std::string hash, Credential cred);

  /// Looks a credential up by content hash; nullptr when absent.
  const Credential* Get(const std::string& hash) const;

  bool Contains(const std::string& hash) const;
  size_t size() const { return by_hash_.size(); }

  /// Verifies the credential's signature under `key`, memoized per
  /// (hash, key fingerprint). Cache hits skip RSA entirely. kNotFound if
  /// the hash is not in the store.
  util::Result<bool> VerifySignature(const std::string& hash,
                                     const crypto::RsaPublicKey& key);

  /// Transitive link closure of `hash`, root first, dependencies after,
  /// each hash exactly once. kNotFound names the first missing link;
  /// kFailedPrecondition reports a link cycle.
  util::Result<std::vector<std::string>> ResolveClosure(
      const std::string& hash) const;

  /// Removes one credential and its cached verification verdicts. Used to
  /// roll freshly staged credentials back out when a bundle import is
  /// rejected. Returns true if the hash was present.
  bool Erase(const std::string& hash);

  /// Removes every credential whose validity interval excludes `now`, along
  /// with its cached verification results. Returns the number removed.
  size_t SweepExpired(int64_t now);

  const Stats& stats() const { return stats_; }

 private:
  void DropVerdicts(const std::string& hash);

  std::map<std::string, Credential> by_hash_;
  /// (hash + '|' + key fingerprint) -> verification outcome.
  std::map<std::string, bool> verify_cache_;
  Stats stats_;
};

}  // namespace lbtrust::cred

#endif  // LBTRUST_CRED_STORE_H_
