#ifndef LBTRUST_TRUST_AUTH_SCHEME_H_
#define LBTRUST_TRUST_AUTH_SCHEME_H_

#include <memory>
#include <string>
#include <vector>

namespace lbtrust::trust {

/// A `says` authentication scheme (§4.1): the rule set that implements
/// export (signing) and import (verification) of communicated rules.
/// Schemes differ ONLY in these rules — exactly the paper's point about
/// reconfigurability: swapping RSA for HMAC changes two rules (exp1/exp3)
/// while every policy that uses `says` is untouched.
class AuthScheme {
 public:
  virtual ~AuthScheme() = default;

  virtual std::string name() const = 0;

  /// exp0/exp1-style rules run by the *sending* principal: declare the
  /// export predicate and derive signed export tuples from says facts.
  virtual std::string ExportRules() const = 0;

  /// exp2/exp3-style rules and constraints run by the *receiving*
  /// principal: import received exports into says and verify authenticity.
  virtual std::string ImportRules() const = 0;

  /// Rules that differ between this scheme and `other` (count used by the
  /// reconfiguration benchmark; the paper reports 2 for RSA->HMAC).
  static int CountDifferingRules(const AuthScheme& a, const AuthScheme& b);
};

/// No authentication: exports carry an empty signature; imports are
/// accepted unconditionally ("cleartext principal headers").
class PlaintextScheme : public AuthScheme {
 public:
  std::string name() const override { return "plaintext"; }
  std::string ExportRules() const override;
  std::string ImportRules() const override;
};

/// 1024-bit RSA signatures (exp1/exp3 of §4.1.1).
class RsaScheme : public AuthScheme {
 public:
  std::string name() const override { return "rsa"; }
  std::string ExportRules() const override;
  std::string ImportRules() const override;
};

/// HMAC-SHA1 over a shared secret (exp1'/exp3' of §4.1.2).
class HmacScheme : public AuthScheme {
 public:
  std::string name() const override { return "hmac"; }
  std::string ExportRules() const override;
  std::string ImportRules() const override;
};

/// Scheme registry by name ("plaintext", "rsa", "hmac").
std::unique_ptr<AuthScheme> MakeScheme(const std::string& name);

}  // namespace lbtrust::trust

#endif  // LBTRUST_TRUST_AUTH_SCHEME_H_
