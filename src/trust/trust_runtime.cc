#include "trust/trust_runtime.h"

#include <set>

#include "datalog/parser.h"
#include "datalog/pretty.h"
#include "meta/codegen.h"
#include "meta/meta_model.h"
#include "util/strings.h"

namespace lbtrust::trust {

using datalog::ParsedClause;
using datalog::Value;
using util::Result;
using util::Status;

Result<crypto::RsaKeyPair> TrustRuntime::DeriveKeyPair(
    const std::string& principal, uint64_t key_seed, size_t rsa_bits) {
  uint64_t seed = key_seed != 0 ? key_seed : util::Fnv1a(principal) | 1;
  crypto::SecureRandom rng(seed);
  return crypto::RsaGenerateKeyPair(rsa_bits, &rng);
}

Result<std::unique_ptr<TrustRuntime>> TrustRuntime::Create(Options options) {
  if (options.principal.empty()) {
    return util::InvalidArgument("principal name must not be empty");
  }
  std::unique_ptr<TrustRuntime> rt(new TrustRuntime(options));
  rt->options_.workspace.principal = rt->options_.principal;
  rt->workspace_ =
      std::make_unique<datalog::Workspace>(rt->options_.workspace);
  datalog::Workspace* ws = rt->workspace_.get();

  LB_ASSIGN_OR_RETURN(
      rt->keypair_,
      DeriveKeyPair(options.principal, options.key_seed, options.rsa_bits));
  std::string priv_handle =
      rt->keystore_.AddRsaPrivateKey(rt->keypair_.private_key);
  std::string pub_handle =
      rt->keystore_.AddRsaPublicKey(rt->keypair_.public_key);

  rt->stats_ = std::make_shared<CryptoStats>();
  RegisterCryptoBuiltins(ws, &rt->keystore_, rt->stats_);
  if (rt->options_.enable_meta_model) {
    LB_RETURN_IF_ERROR(meta::EnableMetaModel(ws));
  }

  // Identity facts and key bindings.
  LB_RETURN_IF_ERROR(ws->EnsurePredicate("prin", 1));
  LB_RETURN_IF_ERROR(ws->EnsurePredicate("rsaprivkey", 2));
  LB_RETURN_IF_ERROR(ws->EnsurePredicate("rsapubkey", 2));
  LB_RETURN_IF_ERROR(ws->EnsurePredicate("sharedsecret", 3));
  LB_RETURN_IF_ERROR(
      ws->AddFact("prin", {Value::Sym(rt->options_.principal)}));
  LB_RETURN_IF_ERROR(ws->AddFact("rsaprivkey",
                                 {Value::Sym(rt->options_.principal),
                                  Value::Str(priv_handle)}));
  LB_RETURN_IF_ERROR(ws->AddFact("rsapubkey",
                                 {Value::Sym(rt->options_.principal),
                                  Value::Str(pub_handle)}));

  // The says core (§4.1).
  LB_RETURN_IF_ERROR(
      ws->Load("says0: says(U1,U2,R) -> prin(U1), prin(U2), rule(R)."));
  if (rt->options_.trusting_activation) {
    LB_RETURN_IF_ERROR(ws->Load("says1: active(R) <- says(_,me,R)."));
  }
  rt->peer_key_fingerprints_[rt->options_.principal] =
      crypto::KeyFingerprint(rt->keypair_.public_key);
  return rt;
}

Result<int> TrustRuntime::UseScheme(const AuthScheme& scheme) {
  std::string new_text = scheme.ExportRules() + scheme.ImportRules();
  if (scheme.name() == scheme_name_) return 0;

  int changed = 0;
  datalog::Workspace* ws = workspace_.get();
  LB_ASSIGN_OR_RETURN(std::vector<ParsedClause> new_clauses,
                      datalog::ParseProgram(new_text));
  std::set<std::string> new_canons;
  for (const ParsedClause& clause : new_clauses) {
    for (const datalog::Rule& rule : clause.rules) {
      new_canons.insert(datalog::PrintRule(
          datalog::ResolveMeRule(rule, options_.principal)));
    }
    for (const datalog::Constraint& c : clause.constraints) {
      new_canons.insert(datalog::PrintConstraint(c));
    }
  }
  // Remove only the clauses of the previous scheme that the new scheme
  // does not share — the paper's measure of reconfiguration effort (2
  // clauses for RSA -> HMAC: exp1 and exp3).
  if (!scheme_text_.empty()) {
    LB_ASSIGN_OR_RETURN(std::vector<ParsedClause> old_clauses,
                        datalog::ParseProgram(scheme_text_));
    for (const ParsedClause& clause : old_clauses) {
      for (const datalog::Rule& rule : clause.rules) {
        if (new_canons.count(datalog::PrintRule(
                datalog::ResolveMeRule(rule, options_.principal)))) {
          continue;
        }
        Status st = ws->RemoveRule(rule);
        if (st.ok()) ++changed;
      }
      for (const datalog::Constraint& c : clause.constraints) {
        if (new_canons.count(datalog::PrintConstraint(c))) continue;
        if (!c.label.empty()) {
          Status st = ws->RemoveConstraintsByLabel(c.label);
          if (st.ok()) ++changed;
        }
      }
    }
  }
  LB_RETURN_IF_ERROR(ws->Load(new_text));
  scheme_name_ = scheme.name();
  scheme_text_ = std::move(new_text);
  return changed;
}

Status TrustRuntime::AddPeer(const std::string& peer,
                             const crypto::RsaPublicKey& key) {
  std::string handle = keystore_.AddRsaPublicKey(key);
  peer_key_fingerprints_[peer] = crypto::KeyFingerprint(key);
  LB_RETURN_IF_ERROR(workspace_->AddFact("prin", {Value::Sym(peer)}));
  return workspace_->AddFact("rsapubkey",
                             {Value::Sym(peer), Value::Str(handle)});
}

Status TrustRuntime::AddSharedSecret(const std::string& peer,
                                     const std::string& secret) {
  std::string handle = keystore_.AddSharedSecret(secret);
  LB_RETURN_IF_ERROR(workspace_->AddFact("prin", {Value::Sym(peer)}));
  return workspace_->AddFact(
      "sharedsecret",
      {Value::Sym(options_.principal), Value::Sym(peer), Value::Str(handle)});
}

Status TrustRuntime::Load(std::string_view program) {
  return workspace_->Load(program);
}

Status TrustRuntime::Say(const std::string& destination,
                         std::string_view rule_text) {
  LB_ASSIGN_OR_RETURN(Value code, meta::QuoteRuleText(rule_text));
  return workspace_->AddFact(
      "says",
      {Value::Sym(options_.principal), Value::Sym(destination), code});
}

Result<std::string> TrustRuntime::Issue(std::string_view payload,
                                        std::vector<std::string> links,
                                        int64_t not_before,
                                        int64_t not_after) {
  // Reject unparsable evidence at issuance, not at the importing peer.
  LB_RETURN_IF_ERROR(datalog::ParseProgram(payload).status());
  for (const std::string& link : links) {
    if (!credstore_.Contains(link)) {
      return util::NotFound(
          util::StrCat("cannot link unknown credential ", link));
    }
  }
  cred::Credential credential;
  credential.issuer = options_.principal;
  credential.key_fingerprint = crypto::KeyFingerprint(keypair_.public_key);
  credential.not_before = not_before;
  credential.not_after = not_after;
  credential.links = std::move(links);
  credential.payload = std::string(payload);
  LB_RETURN_IF_ERROR(
      cred::SignCredential(&credential, keypair_.private_key));
  return credstore_.Put(std::move(credential));
}

Result<std::string> TrustRuntime::ExportCredential(const std::string& hash) {
  LB_ASSIGN_OR_RETURN(std::vector<std::string> closure,
                      credstore_.ResolveClosure(hash));
  std::vector<cred::Credential> bundle;
  bundle.reserve(closure.size());
  for (const std::string& member : closure) {
    bundle.push_back(*credstore_.Get(member));
  }
  return cred::SerializeBundle(bundle);
}

Result<cred::ImportStats> TrustRuntime::ImportCredentials(
    std::string_view bundle, int64_t now) {
  LB_ASSIGN_OR_RETURN(std::vector<cred::Credential> credentials,
                      cred::ParseBundle(bundle));
  if (credentials.empty()) {
    return util::InvalidArgument("empty credential bundle");
  }
  // Content-addressed staging: already-known credentials dedup here, and
  // their cached verification verdicts make the import skip RSA entirely.
  // Members that are NEW to the store are provisional until the whole
  // bundle verifies — a rejected bundle must not pollute the store with
  // unverified (and possibly unexpirable) credentials.
  std::string root_hash;
  std::vector<std::string> staged;
  for (cred::Credential& credential : credentials) {
    std::string hash = cred::CredentialHash(credential);
    if (!credstore_.Contains(hash)) {
      // The hash was just computed from this exact content, so inserting
      // under it directly avoids Put() rehashing the credential.
      credstore_.InsertForReplication(hash, std::move(credential));
      staged.push_back(hash);
    }
    if (root_hash.empty()) root_hash = std::move(hash);
  }
  cred::KeyResolver resolver =
      [this](const std::string& issuer,
             const std::string& fingerprint) -> const crypto::RsaPublicKey* {
    auto bound = peer_key_fingerprints_.find(issuer);
    if (bound == peer_key_fingerprints_.end() || bound->second != fingerprint) {
      return nullptr;  // unknown issuer, or a key we never bound to them
    }
    return keystore_.FindPublicByFingerprint(fingerprint);
  };
  util::Result<cred::ImportStats> result = cred::ImportCredentialSet(
      root_hash, &credstore_, workspace_.get(), resolver, now);
  if (!result.ok()) {
    for (const std::string& hash : staged) credstore_.Erase(hash);
    return result;
  }
  // Only the root's link closure was verified; bundle members outside it
  // are unverified freight and must not survive the import (they would be
  // unexpirable and ExportCredential could re-ship them).
  auto closure = credstore_.ResolveClosure(root_hash);
  if (closure.ok()) {
    std::set<std::string> keep(closure->begin(), closure->end());
    for (const std::string& hash : staged) {
      if (keep.count(hash) == 0) credstore_.Erase(hash);
    }
  }
  return result;
}

Status TrustRuntime::StageTuples(const std::string& relation,
                                 std::vector<datalog::Tuple> tuples) {
  for (datalog::Tuple& tuple : tuples) {
    LB_RETURN_IF_ERROR(workspace_->EnsurePredicate(relation, tuple.size(),
                                                   /*partitioned=*/true));
    if (!inbox_.has_value()) inbox_.emplace(workspace_->Begin());
    inbox_->AddFact(relation, std::move(tuple));
  }
  return util::OkStatus();
}

Status TrustRuntime::CommitInbox() {
  if (!inbox_.has_value()) return util::OkStatus();
  datalog::Transaction txn = std::move(*inbox_);
  inbox_.reset();
  return txn.Commit();
}

Status TrustRuntime::CommitInboxNoFixpoint() {
  if (!inbox_.has_value()) return util::OkStatus();
  datalog::Transaction txn = std::move(*inbox_);
  inbox_.reset();
  return txn.CommitNoFixpoint();
}

void TrustRuntime::SyncMetrics() {
  obs::MetricsRegistry* reg = workspace_->metrics();
  if (reg == nullptr) return;
  auto set = [reg](const char* name, const char* labels, size_t value) {
    reg->GetCounter(name, labels)->Set(static_cast<uint64_t>(value));
  };
  const cred::CredentialStore::Stats& cs = credstore_.stats();
  set("lbtrust_credential_store_puts_total", "", cs.puts);
  set("lbtrust_credential_store_dedup_hits_total", "", cs.dedup_hits);
  set("lbtrust_credential_verify_total", "cache=\"miss\"", cs.rsa_verifies);
  set("lbtrust_credential_verify_total", "cache=\"hit\"",
      cs.verify_cache_hits);
  set("lbtrust_credential_store_swept_total", "", cs.swept);
  const CryptoStats& crypto = *stats_;
  set("lbtrust_crypto_ops_total", "op=\"rsa_sign\"", crypto.rsa_signs);
  set("lbtrust_crypto_ops_total", "op=\"rsa_verify\"", crypto.rsa_verifies);
  set("lbtrust_crypto_ops_total", "op=\"hmac_sign\"", crypto.hmac_signs);
  set("lbtrust_crypto_ops_total", "op=\"hmac_verify\"",
      crypto.hmac_verifies);
  set("lbtrust_crypto_cache_hits_total", "", crypto.cache_hits);
}

std::string TrustRuntime::DumpMetrics() {
  SyncMetrics();
  return workspace_->DumpMetrics();
}

}  // namespace lbtrust::trust
