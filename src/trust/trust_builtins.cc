#include "trust/trust_builtins.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/crc32.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"
#include "crypto/stream_cipher.h"
#include "util/strings.h"

namespace lbtrust::trust {

using datalog::Tuple;
using datalog::Value;
using datalog::ValueKind;
using util::Status;

namespace {

// Bytes a value contributes to signatures/MACs: canonical code form for
// rules, raw text for strings/symbols, printed form otherwise.
std::string MessageBytes(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kCode:
      return v.AsCode().canon;
    case ValueKind::kString:
    case ValueKind::kSymbol:
      return v.AsText();
    default:
      return v.ToString();
  }
}

struct Caches {
  std::map<std::pair<std::string, std::string>, std::string> rsa_sign;
  std::map<std::string, bool> rsa_verify;  // key: msg|sig|handle
  std::map<std::pair<std::string, std::string>, std::string> hmac_sign;
};

}  // namespace

void RegisterCryptoBuiltins(datalog::Workspace* ws, const KeyStore* keystore,
                            std::shared_ptr<CryptoStats> stats) {
  auto caches = std::make_shared<Caches>();
  if (!stats) stats = std::make_shared<CryptoStats>();

  ws->RegisterBuiltin(
      "rsasign", 3, {"bfb", "bbb"},
      [keystore, caches, stats](const std::vector<std::optional<Value>>& args,
                                const datalog::EmitFn& emit) -> Status {
        std::string msg = MessageBytes(*args[0]);
        std::string handle = MessageBytes(*args[2]);
        auto key = std::make_pair(msg, handle);
        auto it = caches->rsa_sign.find(key);
        std::string sig_hex;
        if (it != caches->rsa_sign.end()) {
          ++stats->cache_hits;
          sig_hex = it->second;
        } else {
          const crypto::RsaPrivateKey* priv = keystore->FindPrivate(handle);
          if (priv == nullptr) {
            return util::CryptoError(
                util::StrCat("unknown private key handle '", handle, "'"));
          }
          LB_ASSIGN_OR_RETURN(std::string sig, crypto::RsaSign(*priv, msg));
          ++stats->rsa_signs;
          sig_hex = util::HexEncode(sig);
          caches->rsa_sign.emplace(key, sig_hex);
        }
        emit({*args[0], Value::Str(sig_hex), *args[2]});
        return util::OkStatus();
      });

  ws->RegisterBuiltin(
      "rsaverify", 3, {"bbb"},
      [keystore, caches, stats](const std::vector<std::optional<Value>>& args,
                                const datalog::EmitFn& emit) -> Status {
        std::string msg = MessageBytes(*args[0]);
        std::string sig_hex = MessageBytes(*args[1]);
        std::string handle = MessageBytes(*args[2]);
        std::string cache_key =
            util::StrCat(msg, "|", sig_hex, "|", handle);
        bool ok;
        auto it = caches->rsa_verify.find(cache_key);
        if (it != caches->rsa_verify.end()) {
          ++stats->cache_hits;
          ok = it->second;
        } else {
          const crypto::RsaPublicKey* pub = keystore->FindPublic(handle);
          if (pub == nullptr) return util::OkStatus();  // no key: no match
          std::string sig;
          if (!util::HexDecode(sig_hex, &sig)) return util::OkStatus();
          ok = crypto::RsaVerify(*pub, msg, sig);
          ++stats->rsa_verifies;
          caches->rsa_verify.emplace(cache_key, ok);
        }
        if (ok) emit({*args[0], *args[1], *args[2]});
        return util::OkStatus();
      });

  ws->RegisterBuiltin(
      "hmacsign", 3, {"bbf", "bbb"},
      [keystore, caches, stats](const std::vector<std::optional<Value>>& args,
                                const datalog::EmitFn& emit) -> Status {
        std::string msg = MessageBytes(*args[0]);
        std::string handle = MessageBytes(*args[1]);
        auto key = std::make_pair(msg, handle);
        auto it = caches->hmac_sign.find(key);
        std::string tag_hex;
        if (it != caches->hmac_sign.end()) {
          ++stats->cache_hits;
          tag_hex = it->second;
        } else {
          const std::string* secret = keystore->FindSecret(handle);
          if (secret == nullptr) {
            return util::CryptoError(
                util::StrCat("unknown shared secret handle '", handle, "'"));
          }
          ++stats->hmac_signs;
          tag_hex = util::HexEncode(crypto::HmacSha1(*secret, msg));
          caches->hmac_sign.emplace(key, tag_hex);
        }
        emit({*args[0], *args[1], Value::Str(tag_hex)});
        return util::OkStatus();
      });

  ws->RegisterBuiltin(
      "hmacverify", 3, {"bbb"},
      [keystore, stats](const std::vector<std::optional<Value>>& args,
                        const datalog::EmitFn& emit) -> Status {
        std::string msg = MessageBytes(*args[0]);
        std::string tag_hex = MessageBytes(*args[1]);
        std::string handle = MessageBytes(*args[2]);
        const std::string* secret = keystore->FindSecret(handle);
        if (secret == nullptr) return util::OkStatus();
        ++stats->hmac_verifies;
        std::string expected =
            util::HexEncode(crypto::HmacSha1(*secret, msg));
        if (crypto::ConstantTimeEquals(expected, tag_hex)) {
          emit({*args[0], *args[1], *args[2]});
        }
        return util::OkStatus();
      });

  ws->RegisterBuiltin(
      "sha1hash", 2, {"bf", "bb"},
      [](const std::vector<std::optional<Value>>& args,
         const datalog::EmitFn& emit) -> Status {
        std::string digest = crypto::Sha1::HexDigest(MessageBytes(*args[0]));
        emit({*args[0], Value::Str(digest)});
        return util::OkStatus();
      });

  ws->RegisterBuiltin(
      "checksum", 2, {"bf", "bb"},
      [](const std::vector<std::optional<Value>>& args,
         const datalog::EmitFn& emit) -> Status {
        uint32_t crc = crypto::Crc32(MessageBytes(*args[0]));
        emit({*args[0], Value::Int(static_cast<int64_t>(crc))});
        return util::OkStatus();
      });

  ws->RegisterBuiltin(
      "encrypt", 3, {"bbf", "bbb"},
      [keystore](const std::vector<std::optional<Value>>& args,
                 const datalog::EmitFn& emit) -> Status {
        std::string msg = MessageBytes(*args[0]);
        std::string handle = MessageBytes(*args[1]);
        const std::string* secret = keystore->FindSecret(handle);
        if (secret == nullptr) {
          return util::CryptoError(
              util::StrCat("unknown shared secret handle '", handle, "'"));
        }
        // Deterministic nonce (hash of key and message) keeps bottom-up
        // recomputation stable: re-deriving the same fact re-produces the
        // same ciphertext.
        std::string nonce =
            crypto::Sha256::Digest(util::StrCat(*secret, "|", msg))
                .substr(0, 16);
        std::string sealed = crypto::SealedBox(*secret, nonce, msg);
        emit({*args[0], *args[1], Value::Str(util::HexEncode(sealed))});
        return util::OkStatus();
      });

  ws->RegisterBuiltin(
      "decrypt", 3, {"bbf", "bbb"},
      [keystore](const std::vector<std::optional<Value>>& args,
                 const datalog::EmitFn& emit) -> Status {
        std::string sealed_hex = MessageBytes(*args[0]);
        std::string handle = MessageBytes(*args[1]);
        const std::string* secret = keystore->FindSecret(handle);
        if (secret == nullptr) return util::OkStatus();
        std::string sealed;
        if (!util::HexDecode(sealed_hex, &sealed)) return util::OkStatus();
        std::string plaintext;
        if (crypto::SealedOpen(*secret, sealed, &plaintext)) {
          emit({*args[0], *args[1], Value::Str(plaintext)});
        }
        return util::OkStatus();
      });
}

}  // namespace lbtrust::trust
