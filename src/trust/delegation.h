#ifndef LBTRUST_TRUST_DELEGATION_H_
#define LBTRUST_TRUST_DELEGATION_H_

#include <string>

namespace lbtrust::trust {

/// §4.2 delegation library, provided as program text so applications can
/// compose it with their policies (install via Workspace::Load /
/// TrustRuntime::Load).

/// Speaks-for (sf0): activate everything `delegator` says.
/// `active(R) <- says(<delegator>,me,R).`
std::string SpeaksForRule(const std::string& delegator);

/// The `delegates` construct (del0/del1): a delegation fact
/// delegates(me,U2,P) generates — via the meta-rule del1 — a speaks-for
/// rule restricted to predicate P. (The paper's del1 writes the delegated
/// predicate as a literal `p`; we bind it to the delegation fact's P,
/// which is what the surrounding text describes.)
std::string DelegationRules();

/// §4.2.1 delegation depth (dd0-dd4). Deviation from the paper's listing,
/// recorded in DESIGN.md: as printed, dd2/dd3 infer depth at the
/// *delegator*, so a chain longer than one hop never propagates. We ship
/// the seed restriction to the delegatee (dd2) and propagate decremented
/// limits from received restrictions (dd3), which implements the semantics
/// the paper's prose describes. dd4 is verbatim.
std::string DelegationDepthRules();

/// §4.2.1 delegation width: restricts the principals allowed in a chain.
/// delWidth(me,P,U) facts enumerate the allowed set; forwarding to a
/// principal outside the set violates the constraint.
std::string DelegationWidthRules();

/// §4.2.2 unweighted threshold (wd1/wd2 generalized): derive
/// `<pred>(C)` when at least `k` principals of pringroup(U,<group>) said
/// `<pred>(C)`.
std::string ThresholdRules(const std::string& pred, const std::string& group,
                           int k);

/// Weighted variant: principals carry prinweight(U,<group>,W); derive when
/// the total weight of sayers reaches `min_weight`.
std::string WeightedThresholdRules(const std::string& pred,
                                   const std::string& group,
                                   double min_weight);

}  // namespace lbtrust::trust

#endif  // LBTRUST_TRUST_DELEGATION_H_
