#ifndef LBTRUST_TRUST_TRUST_BUILTINS_H_
#define LBTRUST_TRUST_TRUST_BUILTINS_H_

#include <memory>

#include "datalog/workspace.h"
#include "trust/keystore.h"

namespace lbtrust::trust {

/// Per-workspace cache so that full recomputation across fixpoint rounds
/// does not redo public-key operations (RSA signing dominates Figure 2;
/// caching keeps repeated fixpoints incremental in crypto cost). Counters
/// are exposed for the benchmarks.
struct CryptoStats {
  size_t rsa_signs = 0;
  size_t rsa_verifies = 0;
  size_t hmac_signs = 0;
  size_t hmac_verifies = 0;
  size_t cache_hits = 0;
};

/// Registers the paper's cryptographic built-ins on a workspace:
///
///   rsasign(R,S,K)    S := RSA signature of R under private key handle K
///   rsaverify(R,S,K)  true iff S verifies R under public key handle K
///   hmacsign(R,K,S)   S := HMAC-SHA1 tag of R under shared secret K
///   hmacverify(R,S,K) true iff tag matches
///   sha1hash(M,H)     H := hex SHA-1 of M        (integrity, §4.1.3)
///   checksum(M,C)     C := CRC-32 of M           (integrity, §4.1.3)
///   encrypt(M,K,C)    C := hex sealed box of M under shared secret K
///   decrypt(C,K,M)    inverse; fails (no solution) on tamper
///
/// Message bytes are the canonical form for code values, the raw text for
/// strings/symbols, and the printed form otherwise.
/// `stats` may be null. Returns the stats object owned by the caller.
void RegisterCryptoBuiltins(datalog::Workspace* workspace,
                            const KeyStore* keystore,
                            std::shared_ptr<CryptoStats> stats);

}  // namespace lbtrust::trust

#endif  // LBTRUST_TRUST_TRUST_BUILTINS_H_
