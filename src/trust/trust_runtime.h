#ifndef LBTRUST_TRUST_TRUST_RUNTIME_H_
#define LBTRUST_TRUST_TRUST_RUNTIME_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cred/importer.h"
#include "cred/store.h"
#include "crypto/rsa.h"
#include "datalog/workspace.h"
#include "trust/auth_scheme.h"
#include "trust/keystore.h"
#include "trust/trust_builtins.h"
#include "util/status.h"

namespace lbtrust::trust {

/// One principal's LBTrust context: a workspace wired with the meta-model,
/// the cryptographic built-ins, a key store holding the principal's RSA
/// key pair, the `says` core (says0/says1 of §4.1), and a pluggable
/// authentication scheme. This is the paper's "context" — net::Cluster
/// places one (or several) of these on simulated nodes.
///
/// The runtime re-exports the workspace session API: `Prepare()` compiles
/// a policy-decision query once into a reusable `PreparedQuery` handle
/// (per-request evaluation with no parsing), and `Begin()` opens a
/// `Transaction` that stages mutations — including `Say()` — and applies
/// them with a single Fixpoint() at Commit(). Long-lived services should
/// prepare their queries at startup and batch related mutations; the
/// one-shot calls below remain for interactive and migration use.
class TrustRuntime {
 public:
  struct Options {
    std::string principal = "local";
    /// RSA key material is generated deterministically from this seed
    /// (0 = derive from the principal name), so runs are reproducible.
    uint64_t key_seed = 0;
    size_t rsa_bits = 1024;
    bool enable_meta_model = true;
    /// Install says1 ("active(R) <- says(_,me,R)."): trust everything said
    /// to me. Turn off when activation should flow through delegation
    /// rules only.
    bool trusting_activation = true;
    /// Engine options, including `workspace.threads` — intra-stratum rule
    /// parallelism for the runtime's fixpoints (0 = hardware concurrency,
    /// 1 = sequential; see README "Parallel evaluation"). Per-runtime
    /// stores/pools stay single-owner, so concurrent TrustRuntimes compose
    /// with per-runtime worker pools.
    datalog::Workspace::Options workspace;
  };

  static util::Result<std::unique_ptr<TrustRuntime>> Create(Options options);

  /// The deterministic key material Create() gives a principal: generated
  /// from `key_seed` (0 = derive from the principal name). Exposed so a
  /// remote process can compute a peer's public key without ever seeing
  /// the peer — the distributed runtime registers full-mesh peer keys this
  /// way, byte-identical to the simulated cluster's Connect().
  static util::Result<crypto::RsaKeyPair> DeriveKeyPair(
      const std::string& principal, uint64_t key_seed, size_t rsa_bits);

  /// Session API (re-exported from the workspace): a prepared read handle
  /// and a batch write handle.
  util::Result<datalog::PreparedQuery> Prepare(std::string_view atom_text) {
    return workspace_->Prepare(atom_text);
  }
  datalog::Transaction Begin() { return workspace_->Begin(); }

  const std::string& principal() const { return options_.principal; }
  datalog::Workspace* workspace() { return workspace_.get(); }
  KeyStore* keystore() { return &keystore_; }
  const crypto::RsaKeyPair& keypair() const { return keypair_; }
  const CryptoStats& crypto_stats() const { return *stats_; }

  /// Installs (or swaps in) an authentication scheme. Returns the number
  /// of clauses that changed relative to the previously installed scheme
  /// (the paper reports 2 for RSA -> HMAC).
  util::Result<int> UseScheme(const AuthScheme& scheme);
  const std::string& scheme_name() const { return scheme_name_; }

  /// Registers a remote principal: prin(peer) + rsapubkey(peer,handle).
  util::Status AddPeer(const std::string& peer,
                       const crypto::RsaPublicKey& key);
  /// Registers a shared HMAC secret with a peer:
  /// sharedsecret(me,peer,handle). Both sides must add the same secret.
  util::Status AddSharedSecret(const std::string& peer,
                               const std::string& secret);

  /// Loads policy text with `me` = this principal.
  util::Status Load(std::string_view program);

  /// Asserts says(me, destination, [| rule_text |]) — the programmatic way
  /// to say something (policies usually derive says instead). Batch
  /// counterpart: Begin().Say(destination, rule_text)...Commit().
  util::Status Say(const std::string& destination, std::string_view rule_text);

  // --- Credentials (src/cred): signed, linkable, portable evidence --------

  /// This principal's content-addressed credential store (issued and
  /// imported credentials, with the memoized verification cache).
  cred::CredentialStore* credentials() { return &credstore_; }

  /// Signs `payload` (program text: facts/rules this principal states) into
  /// a credential linked to `links` (content hashes that must already be in
  /// the store), valid in [not_before, not_after] (0 = unbounded), and puts
  /// it in the store. Returns the credential's content hash.
  util::Result<std::string> Issue(std::string_view payload,
                                  std::vector<std::string> links = {},
                                  int64_t not_before = 0,
                                  int64_t not_after = 0);

  /// Serializes the credential and its transitive link closure into a
  /// bundle ready to ship to another principal.
  util::Result<std::string> ExportCredential(const std::string& hash);

  /// Verifies and imports a bundle produced by a peer's ExportCredential():
  /// all member credentials land in the store (content-deduplicated), the
  /// closure is signature-checked against registered peer keys (cache hits
  /// skip RSA), validity-checked at `now`, and materialized as
  /// says(issuer, me, [| clause |]) facts in one transaction + fixpoint.
  /// A rejected bundle leaves both the workspace and the store untouched
  /// (members staged from the failing bundle are rolled back out).
  util::Result<cred::ImportStats> ImportCredentials(std::string_view bundle,
                                                    int64_t now = 0);

  /// Runs the workspace to fixpoint (including export signing, import
  /// verification, codegen and constraint checks).
  util::Status Fixpoint() { return workspace_->Fixpoint(); }

  // --- Observability -------------------------------------------------------

  /// Mirrors the credential-store and crypto-builtin counters into the
  /// workspace metrics registry (no-op when Options::workspace.metrics is
  /// off). Counters are mirrored on demand — the crypto hot paths keep
  /// their plain size_t stats and pay nothing per operation.
  void SyncMetrics();

  /// SyncMetrics() + the workspace's Prometheus-style exposition: one call
  /// covers engine, trust and credential metrics for this principal.
  std::string DumpMetrics();

  // --- Async import hooks (net transports) --------------------------------
  // A network runtime stages inbound tuple blocks between fixpoints and
  // commits them as one batch; calls must come from the thread driving the
  // runtime (the transports are single-threaded by design).

  /// Stages inbound tuples for `relation` into the runtime's inbox
  /// transaction (created on first use; the predicate is created
  /// partitioned if unknown). No fixpoint runs until CommitInbox().
  util::Status StageTuples(const std::string& relation,
                           std::vector<datalog::Tuple> tuples);
  bool HasInbox() const { return inbox_.has_value(); }
  /// Applies every staged tuple as one batch, then runs one fixpoint.
  util::Status CommitInbox();
  /// Applies staged tuples without a fixpoint (durable; they surface at
  /// the node's next fixpoint) — for runs cut off mid-exchange.
  util::Status CommitInboxNoFixpoint();

 private:
  explicit TrustRuntime(Options options) : options_(std::move(options)) {}

  Options options_;
  std::unique_ptr<datalog::Workspace> workspace_;
  KeyStore keystore_;
  crypto::RsaKeyPair keypair_;
  std::shared_ptr<CryptoStats> stats_;
  std::string scheme_name_;
  std::string scheme_text_;  // installed clauses, for swap-out
  cred::CredentialStore credstore_;
  /// Trust anchors for credential import: principal -> key fingerprint,
  /// populated by Create() (self) and AddPeer().
  std::map<std::string, std::string> peer_key_fingerprints_;
  /// Inbound tuples staged between fixpoints (async import hooks).
  std::optional<datalog::Transaction> inbox_;
};

}  // namespace lbtrust::trust

#endif  // LBTRUST_TRUST_TRUST_RUNTIME_H_
