#include "trust/delegation.h"

#include "util/strings.h"

namespace lbtrust::trust {

std::string SpeaksForRule(const std::string& delegator) {
  return util::StrCat("sf0: active(R) <- says(", delegator, ",me,R).\n");
}

std::string DelegationRules() {
  return
      // del0: type declaration.
      "del0: delegates(U1,U2,P) -> prin(U1), prin(U2), predicate(P).\n"
      // del1: a delegation fact generates the restricted speaks-for rule.
      "del1: active([| active(R2) <- says(U2,me,R2), "
      "R2 = [| P(T*) <- A*. |]. |]) <- delegates(me,U2,P).\n";
}

std::string DelegationDepthRules() {
  return
      "dd0: delDepth(U1,U2,P,N) -> prin(U1), prin(U2), predicate(P), "
      "int[64](N).\n"
      "dd1: inferredDelDepth(U1,U2,P,N) -> prin(U1), prin(U2), predicate(P), "
      "int[64](N).\n"
      // dd2: ship the seed restriction to the restricted delegatee.
      "dd2: says(me,U,[| inferredDelDepth(me,U,P,N). |]) <- "
      "delDepth(me,U,P,N).\n"
      // dd3: a principal under restriction N>0 who further delegates P to W
      // imposes N-1 on W.
      "dd3: says(me,W,[| inferredDelDepth(me,W,P,N-1). |]) <- "
      "inferredDelDepth(_,me,P,N), delegates(me,W,P), N > 0.\n"
      // dd4: restriction 0 forbids further delegation (verbatim).
      "dd4: inferredDelDepth(_,me,P,0) -> !delegates(me,_,P).\n";
}

std::string DelegationWidthRules() {
  return
      "dw0: delWidth(U1,P,U) -> prin(U1), predicate(P), prin(U).\n"
      // A width-restricted principal may only delegate P inside the set it
      // received. Width sets propagate along the chain like depth limits.
      "dw1: says(me,U,[| inferredDelWidth(me,U,P,W). |]) <- "
      "delWidth(me,P,W), delegates(me,U,P).\n"
      "dw2: says(me,U,[| inferredDelWidth(me,U,P,W). |]) <- "
      "inferredDelWidth(_,me,P,W), delegates(me,U,P).\n"
      "dw3: inferredDelWidth(_,me,P,_), delegates(me,U,P) -> "
      "inferredDelWidth(_,me,P,U).\n";
}

std::string ThresholdRules(const std::string& pred, const std::string& group,
                           int k) {
  return util::StrCat(
      pred, "Count(C,N) <- agg<<N = count(U)>> pringroup(U,", group,
      "), says(U,me,[| ", pred, "(C). |]).\n",
      pred, "(C) <- ", pred, "Count(C,N), N >= ", k, ".\n");
}

std::string WeightedThresholdRules(const std::string& pred,
                                   const std::string& group,
                                   double min_weight) {
  return util::StrCat(
      pred, "Score(C,N) <- agg<<N = total(W)>> prinweight(U,", group,
      ",W), says(U,me,[| ", pred, "(C). |]).\n",
      pred, "(C) <- ", pred, "Score(C,N), N >= ", min_weight, ".\n");
}

}  // namespace lbtrust::trust
