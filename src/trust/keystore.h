#ifndef LBTRUST_TRUST_KEYSTORE_H_
#define LBTRUST_TRUST_KEYSTORE_H_

#include <map>
#include <string>
#include <vector>

#include "crypto/rsa.h"
#include "util/status.h"

namespace lbtrust::trust {

/// Maps opaque key *handles* (short strings that appear as values inside
/// policies, e.g. in `rsaprivkey(me,K)`) to key material. Policies only ever
/// see handles — private keys never enter the fact base, mirroring the
/// paper's "application-defined libraries of custom predicates" (§3).
class KeyStore {
 public:
  /// Stores a key and returns its handle ("rsa:priv:<fp>", "rsa:pub:<fp>",
  /// "hmac:<fp>"). Re-adding identical material returns the same handle.
  std::string AddRsaPrivateKey(const crypto::RsaPrivateKey& key);
  std::string AddRsaPublicKey(const crypto::RsaPublicKey& key);
  std::string AddSharedSecret(const std::string& secret);

  const crypto::RsaPrivateKey* FindPrivate(const std::string& handle) const;
  const crypto::RsaPublicKey* FindPublic(const std::string& handle) const;
  const std::string* FindSecret(const std::string& handle) const;

  /// Fingerprint of the key material behind a stored handle (the "<fp>"
  /// component: crypto::KeyFingerprint for RSA keys — identical for a key
  /// pair's private and public handle — SHA-1 prefix for HMAC secrets).
  /// kNotFound for handles this store has never issued.
  util::Result<std::string> Fingerprint(const std::string& handle) const;

  /// All public-key handles, in deterministic (sorted) order. Credential
  /// issuance enumerates these to pick signing identities.
  std::vector<std::string> PublicKeyHandles() const;

  /// Public key whose crypto::KeyFingerprint equals `fingerprint`, or
  /// nullptr. This is how credential verification turns the fingerprint
  /// named inside a credential back into key material.
  const crypto::RsaPublicKey* FindPublicByFingerprint(
      const std::string& fingerprint) const;

  size_t size() const {
    return private_keys_.size() + public_keys_.size() + secrets_.size();
  }

 private:
  std::map<std::string, crypto::RsaPrivateKey> private_keys_;
  std::map<std::string, crypto::RsaPublicKey> public_keys_;
  std::map<std::string, std::string> secrets_;
};

}  // namespace lbtrust::trust

#endif  // LBTRUST_TRUST_KEYSTORE_H_
