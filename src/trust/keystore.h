#ifndef LBTRUST_TRUST_KEYSTORE_H_
#define LBTRUST_TRUST_KEYSTORE_H_

#include <map>
#include <string>

#include "crypto/rsa.h"

namespace lbtrust::trust {

/// Maps opaque key *handles* (short strings that appear as values inside
/// policies, e.g. in `rsaprivkey(me,K)`) to key material. Policies only ever
/// see handles — private keys never enter the fact base, mirroring the
/// paper's "application-defined libraries of custom predicates" (§3).
class KeyStore {
 public:
  /// Stores a key and returns its handle ("rsa:priv:<fp>", "rsa:pub:<fp>",
  /// "hmac:<fp>"). Re-adding identical material returns the same handle.
  std::string AddRsaPrivateKey(const crypto::RsaPrivateKey& key);
  std::string AddRsaPublicKey(const crypto::RsaPublicKey& key);
  std::string AddSharedSecret(const std::string& secret);

  const crypto::RsaPrivateKey* FindPrivate(const std::string& handle) const;
  const crypto::RsaPublicKey* FindPublic(const std::string& handle) const;
  const std::string* FindSecret(const std::string& handle) const;

  size_t size() const {
    return private_keys_.size() + public_keys_.size() + secrets_.size();
  }

 private:
  std::map<std::string, crypto::RsaPrivateKey> private_keys_;
  std::map<std::string, crypto::RsaPublicKey> public_keys_;
  std::map<std::string, std::string> secrets_;
};

}  // namespace lbtrust::trust

#endif  // LBTRUST_TRUST_KEYSTORE_H_
