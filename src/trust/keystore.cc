#include "trust/keystore.h"

#include "crypto/sha1.h"
#include "util/strings.h"

namespace lbtrust::trust {

namespace {
std::string MaterialFingerprint(const std::string& material) {
  return util::HexEncode(crypto::Sha1::Digest(material)).substr(0, 16);
}
}  // namespace

std::string KeyStore::AddRsaPrivateKey(const crypto::RsaPrivateKey& key) {
  std::string handle =
      util::StrCat("rsa:priv:", crypto::KeyFingerprint(key.PublicKey()));
  private_keys_.emplace(handle, key);
  return handle;
}

std::string KeyStore::AddRsaPublicKey(const crypto::RsaPublicKey& key) {
  std::string handle =
      util::StrCat("rsa:pub:", crypto::KeyFingerprint(key));
  public_keys_.emplace(handle, key);
  return handle;
}

std::string KeyStore::AddSharedSecret(const std::string& secret) {
  std::string handle = util::StrCat("hmac:", MaterialFingerprint(secret));
  secrets_.emplace(handle, secret);
  return handle;
}

const crypto::RsaPrivateKey* KeyStore::FindPrivate(
    const std::string& handle) const {
  auto it = private_keys_.find(handle);
  return it == private_keys_.end() ? nullptr : &it->second;
}

const crypto::RsaPublicKey* KeyStore::FindPublic(
    const std::string& handle) const {
  auto it = public_keys_.find(handle);
  return it == public_keys_.end() ? nullptr : &it->second;
}

const std::string* KeyStore::FindSecret(const std::string& handle) const {
  auto it = secrets_.find(handle);
  return it == secrets_.end() ? nullptr : &it->second;
}

util::Result<std::string> KeyStore::Fingerprint(
    const std::string& handle) const {
  if (private_keys_.count(handle) == 0 && public_keys_.count(handle) == 0 &&
      secrets_.count(handle) == 0) {
    return util::NotFound(util::StrCat("unknown key handle '", handle, "'"));
  }
  // Handles are "<scheme>:[priv|pub:]<fp>"; the fingerprint is the part
  // after the last colon (handles are minted by this class, see Add*).
  size_t sep = handle.rfind(':');
  return handle.substr(sep + 1);
}

std::vector<std::string> KeyStore::PublicKeyHandles() const {
  std::vector<std::string> out;
  out.reserve(public_keys_.size());
  for (const auto& [handle, key] : public_keys_) out.push_back(handle);
  return out;  // std::map iteration order: already sorted
}

const crypto::RsaPublicKey* KeyStore::FindPublicByFingerprint(
    const std::string& fingerprint) const {
  return FindPublic(util::StrCat("rsa:pub:", fingerprint));
}

}  // namespace lbtrust::trust
