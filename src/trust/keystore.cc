#include "trust/keystore.h"

#include "crypto/sha1.h"
#include "util/strings.h"

namespace lbtrust::trust {

namespace {
std::string Fingerprint(const std::string& material) {
  return util::HexEncode(crypto::Sha1::Digest(material)).substr(0, 16);
}
}  // namespace

std::string KeyStore::AddRsaPrivateKey(const crypto::RsaPrivateKey& key) {
  std::string handle =
      util::StrCat("rsa:priv:", Fingerprint(key.n.ToHex()));
  private_keys_.emplace(handle, key);
  return handle;
}

std::string KeyStore::AddRsaPublicKey(const crypto::RsaPublicKey& key) {
  std::string handle = util::StrCat("rsa:pub:", Fingerprint(key.n.ToHex()));
  public_keys_.emplace(handle, key);
  return handle;
}

std::string KeyStore::AddSharedSecret(const std::string& secret) {
  std::string handle = util::StrCat("hmac:", Fingerprint(secret));
  secrets_.emplace(handle, secret);
  return handle;
}

const crypto::RsaPrivateKey* KeyStore::FindPrivate(
    const std::string& handle) const {
  auto it = private_keys_.find(handle);
  return it == private_keys_.end() ? nullptr : &it->second;
}

const crypto::RsaPublicKey* KeyStore::FindPublic(
    const std::string& handle) const {
  auto it = public_keys_.find(handle);
  return it == public_keys_.end() ? nullptr : &it->second;
}

const std::string* KeyStore::FindSecret(const std::string& handle) const {
  auto it = secrets_.find(handle);
  return it == secrets_.end() ? nullptr : &it->second;
}

}  // namespace lbtrust::trust
