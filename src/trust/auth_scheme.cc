#include "trust/auth_scheme.h"

#include <set>

#include "datalog/parser.h"
#include "datalog/pretty.h"

namespace lbtrust::trust {

// The export predicate declaration (exp0) is shared by all schemes:
// export[U1](U2,R,S) — partition key U1 is the *destination* (placement
// follows the destination principal, §4.1.1), U2 the source, R the rule,
// S the signature.
namespace {
const char kExportDecl[] =
    "exp0: export[U1](U2,R,S) -> prin(U1), prin(U2), rule(R), string(S).\n";
}  // namespace

std::string PlaintextScheme::ExportRules() const {
  return std::string(kExportDecl) +
         "exp1: export[U2](me,R,\"\") <- says(me,U2,R).\n";
}

std::string PlaintextScheme::ImportRules() const {
  return "exp2: says(U,me,R) <- export[me](U,R,_).\n";
}

std::string RsaScheme::ExportRules() const {
  return std::string(kExportDecl) +
         "exp1: export[U2](me,R,S) <- says(me,U2,R), rsaprivkey(me,K), "
         "rsasign(R,S,K).\n";
}

std::string RsaScheme::ImportRules() const {
  return "exp2: says(U,me,R) <- export[me](U,R,S).\n"
         "exp3: says(U,me,R) -> export[me](U,R,S), rsapubkey(U,K), "
         "rsaverify(R,S,K).\n";
}

std::string HmacScheme::ExportRules() const {
  return std::string(kExportDecl) +
         "exp1: export[U2](me,R,S) <- says(me,U2,R), sharedsecret(me,U2,K), "
         "hmacsign(R,K,S).\n";
}

std::string HmacScheme::ImportRules() const {
  return "exp2: says(U,me,R) <- export[me](U,R,S).\n"
         "exp3: says(U,me,R) -> export[me](U,R,S), sharedsecret(me,U,K), "
         "hmacverify(R,S,K).\n";
}

std::unique_ptr<AuthScheme> MakeScheme(const std::string& name) {
  if (name == "plaintext") return std::make_unique<PlaintextScheme>();
  if (name == "rsa") return std::make_unique<RsaScheme>();
  if (name == "hmac") return std::make_unique<HmacScheme>();
  return nullptr;
}

int AuthScheme::CountDifferingRules(const AuthScheme& a, const AuthScheme& b) {
  auto canon_set = [](const std::string& text) {
    std::set<std::string> out;
    auto clauses = datalog::ParseProgram(text);
    if (!clauses.ok()) return out;
    for (const auto& clause : *clauses) {
      for (const auto& rule : clause.rules) {
        out.insert(datalog::PrintRule(rule));
      }
      for (const auto& constraint : clause.constraints) {
        out.insert(datalog::PrintConstraint(constraint));
      }
    }
    return out;
  };
  std::set<std::string> sa = canon_set(a.ExportRules() + a.ImportRules());
  std::set<std::string> sb = canon_set(b.ExportRules() + b.ImportRules());
  int differing = 0;
  for (const std::string& s : sa) {
    if (sb.count(s) == 0) ++differing;
  }
  return differing;
}

}  // namespace lbtrust::trust
