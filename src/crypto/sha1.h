#ifndef LBTRUST_CRYPTO_SHA1_H_
#define LBTRUST_CRYPTO_SHA1_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace lbtrust::crypto {

/// Incremental SHA-1 (FIPS 180-1). The paper's HMAC scheme is HMAC-SHA1
/// ("a 160-bit SHA-1 cryptographic hash of the message data and a secret
/// key") and its RSA scheme signs a SHA-1 digest.
class Sha1 {
 public:
  static constexpr size_t kDigestSize = 20;
  static constexpr size_t kBlockSize = 64;

  Sha1() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(std::string_view data) { Update(data.data(), data.size()); }
  /// Finalizes and writes 20 bytes; the object must be Reset() to reuse.
  void Final(uint8_t out[kDigestSize]);

  /// One-shot convenience: raw 20-byte digest.
  static std::string Digest(std::string_view data);
  /// One-shot convenience: lowercase hex digest.
  static std::string HexDigest(std::string_view data);

 private:
  void ProcessBlock(const uint8_t block[kBlockSize]);

  uint32_t state_[5];
  uint64_t length_ = 0;  // bytes processed
  uint8_t buffer_[kBlockSize];
  size_t buffered_ = 0;
};

}  // namespace lbtrust::crypto

#endif  // LBTRUST_CRYPTO_SHA1_H_
