#ifndef LBTRUST_CRYPTO_HMAC_H_
#define LBTRUST_CRYPTO_HMAC_H_

#include <string>
#include <string_view>

namespace lbtrust::crypto {

/// HMAC (RFC 2104) instantiated with SHA-1 and SHA-256. HMAC-SHA1 is the
/// paper's MAC-based `says` authentication scheme (§4.1.2): a 160-bit tag
/// over the message and a shared secret.
///
/// Returns the raw tag bytes (20 for SHA-1, 32 for SHA-256).
std::string HmacSha1(std::string_view key, std::string_view message);
std::string HmacSha256(std::string_view key, std::string_view message);

/// Constant-time comparison of two byte strings (length leaks only).
bool ConstantTimeEquals(std::string_view a, std::string_view b);

}  // namespace lbtrust::crypto

#endif  // LBTRUST_CRYPTO_HMAC_H_
