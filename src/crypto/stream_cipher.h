#ifndef LBTRUST_CRYPTO_STREAM_CIPHER_H_
#define LBTRUST_CRYPTO_STREAM_CIPHER_H_

#include <string>
#include <string_view>

namespace lbtrust::crypto {

/// Symmetric stream cipher: SHA-256 in counter mode keyed by
/// (key, nonce). Backs the confidentiality built-ins (`encrypt`/`decrypt`
/// of facts exchanged between principals, §4.1.3). Encryption and
/// decryption are the same XOR transform.
std::string StreamXor(std::string_view key, std::string_view nonce,
                      std::string_view data);

/// Authenticated wrapper: nonce || ciphertext || HMAC-SHA256 tag over
/// (nonce || ciphertext). Returns empty optional-style "" on failure in
/// Open (tag mismatch) — see SealedOpen.
std::string SealedBox(std::string_view key, std::string_view nonce,
                      std::string_view plaintext);

/// Opens a SealedBox; returns false on tag mismatch or truncation.
bool SealedOpen(std::string_view key, std::string_view sealed,
                std::string* plaintext);

}  // namespace lbtrust::crypto

#endif  // LBTRUST_CRYPTO_STREAM_CIPHER_H_
