#include "crypto/stream_cipher.h"

#include <cstdint>
#include <cstring>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace lbtrust::crypto {

namespace {
constexpr size_t kNonceSize = 16;
constexpr size_t kTagSize = 32;
}  // namespace

std::string StreamXor(std::string_view key, std::string_view nonce,
                      std::string_view data) {
  std::string out(data);
  uint64_t counter = 0;
  size_t pos = 0;
  while (pos < out.size()) {
    Sha256 h;
    h.Update(key);
    h.Update(nonce);
    h.Update(&counter, sizeof(counter));
    uint8_t block[Sha256::kDigestSize];
    h.Final(block);
    size_t take = std::min(out.size() - pos, sizeof(block));
    for (size_t i = 0; i < take; ++i) {
      out[pos + i] = static_cast<char>(out[pos + i] ^ block[i]);
    }
    pos += take;
    ++counter;
  }
  return out;
}

std::string SealedBox(std::string_view key, std::string_view nonce,
                      std::string_view plaintext) {
  std::string n(nonce);
  n.resize(kNonceSize, '\0');
  std::string body = n + StreamXor(key, n, plaintext);
  std::string tag = HmacSha256(key, body);
  return body + tag;
}

bool SealedOpen(std::string_view key, std::string_view sealed,
                std::string* plaintext) {
  if (sealed.size() < kNonceSize + kTagSize) return false;
  std::string_view body = sealed.substr(0, sealed.size() - kTagSize);
  std::string_view tag = sealed.substr(sealed.size() - kTagSize);
  if (!ConstantTimeEquals(HmacSha256(key, body), tag)) return false;
  std::string_view nonce = body.substr(0, kNonceSize);
  std::string_view ct = body.substr(kNonceSize);
  *plaintext = StreamXor(key, nonce, ct);
  return true;
}

}  // namespace lbtrust::crypto
