#include "crypto/secure_random.h"

#include <cstring>
#include <random>

#include "crypto/sha256.h"

namespace lbtrust::crypto {

SecureRandom::SecureRandom(uint64_t seed) {
  seed_.assign(reinterpret_cast<const char*>(&seed), sizeof(seed));
}

SecureRandom::SecureRandom(std::string_view seed) : seed_(seed) {}

SecureRandom SecureRandom::FromSystem() {
  std::random_device rd;
  std::string seed;
  for (int i = 0; i < 8; ++i) {
    uint32_t word = rd();
    seed.append(reinterpret_cast<const char*>(&word), sizeof(word));
  }
  return SecureRandom(seed);
}

void SecureRandom::Refill() {
  Sha256 h;
  h.Update(seed_);
  h.Update(&counter_, sizeof(counter_));
  h.Final(block_);
  ++counter_;
  pos_ = 0;
}

void SecureRandom::Bytes(uint8_t* out, size_t len) {
  while (len > 0) {
    if (pos_ == sizeof(block_)) Refill();
    size_t take = std::min(len, sizeof(block_) - pos_);
    std::memcpy(out, block_ + pos_, take);
    pos_ += take;
    out += take;
    len -= take;
  }
}

std::string SecureRandom::Bytes(size_t len) {
  std::string out(len, '\0');
  Bytes(reinterpret_cast<uint8_t*>(out.data()), len);
  return out;
}

uint64_t SecureRandom::NextUint64() {
  uint8_t buf[8];
  Bytes(buf, sizeof(buf));
  uint64_t v = 0;
  std::memcpy(&v, buf, sizeof(v));
  return v;
}

uint64_t SecureRandom::Uniform(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t v;
  do {
    v = NextUint64();
  } while (v >= limit);
  return v % bound;
}

BigInt SecureRandom::RandomBits(size_t bits) {
  if (bits == 0) return BigInt();
  size_t nbytes = (bits + 7) / 8;
  std::string buf = Bytes(nbytes);
  // Mask excess high bits, then force the top bit.
  size_t excess = nbytes * 8 - bits;
  buf[0] = static_cast<char>(static_cast<uint8_t>(buf[0]) & (0xFF >> excess));
  buf[0] = static_cast<char>(static_cast<uint8_t>(buf[0]) |
                             (0x80 >> excess));
  return BigInt::FromBytes(buf);
}

BigInt SecureRandom::RandomPrimeCandidate(size_t bits) {
  BigInt n = RandomBits(bits);
  // Set the second-highest bit and force odd.
  if (bits >= 2 && !n.Bit(bits - 2)) n = n + (BigInt(1) << (bits - 2));
  if (!n.is_odd()) n = n + BigInt(1);
  return n;
}

}  // namespace lbtrust::crypto
