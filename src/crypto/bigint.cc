#include "crypto/bigint.h"

#include <algorithm>

#include "util/strings.h"

namespace lbtrust::crypto {

using util::InvalidArgument;
using util::Result;
using util::Status;

namespace {
using uint128 = unsigned __int128;
}  // namespace

BigInt::BigInt(int64_t v) {
  uint64_t mag;
  if (v < 0) {
    negative_ = true;
    mag = static_cast<uint64_t>(-(v + 1)) + 1;  // avoids INT64_MIN overflow
  } else {
    mag = static_cast<uint64_t>(v);
  }
  if (mag != 0) limbs_.push_back(mag);
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::FromUint64(uint64_t v) {
  BigInt out;
  if (v != 0) out.limbs_.push_back(v);
  return out;
}

Result<BigInt> BigInt::FromHex(std::string_view hex) {
  BigInt out;
  bool negative = false;
  if (!hex.empty() && hex[0] == '-') {
    negative = true;
    hex.remove_prefix(1);
  }
  uint64_t limb = 0;
  int shift = 0;
  for (size_t i = 0; i < hex.size(); ++i) {
    char c = hex[hex.size() - 1 - i];
    int nibble;
    if (c >= '0' && c <= '9') {
      nibble = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      nibble = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      nibble = c - 'A' + 10;
    } else {
      return InvalidArgument(util::StrCat("bad hex digit '", c, "'"));
    }
    limb |= static_cast<uint64_t>(nibble) << shift;
    shift += 4;
    if (shift == 64) {
      out.limbs_.push_back(limb);
      limb = 0;
      shift = 0;
    }
  }
  if (limb != 0) out.limbs_.push_back(limb);
  out.Trim();
  out.negative_ = negative && !out.limbs_.empty();
  return out;
}

BigInt BigInt::FromBytes(const uint8_t* data, size_t len) {
  BigInt out;
  for (size_t i = 0; i < len; ++i) {
    size_t bit = (len - 1 - i) * 8;
    size_t limb_idx = bit / 64;
    size_t limb_shift = bit % 64;
    if (out.limbs_.size() <= limb_idx) out.limbs_.resize(limb_idx + 1, 0);
    out.limbs_[limb_idx] |= static_cast<uint64_t>(data[i]) << limb_shift;
  }
  out.Trim();
  return out;
}

BigInt BigInt::FromBytes(const std::string& bytes) {
  return FromBytes(reinterpret_cast<const uint8_t*>(bytes.data()),
                   bytes.size());
}

std::string BigInt::ToHex() const {
  if (is_zero()) return "0";
  std::string out;
  if (negative_) out.push_back('-');
  static constexpr char kDigits[] = "0123456789abcdef";
  bool leading = true;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      int nibble = static_cast<int>((limbs_[i] >> shift) & 0xf);
      if (leading && nibble == 0) continue;
      leading = false;
      out.push_back(kDigits[nibble]);
    }
  }
  return out;
}

std::string BigInt::ToBytes(size_t width) const {
  size_t nbytes = (BitLength() + 7) / 8;
  size_t total = std::max(nbytes, width);
  std::string out(total, '\0');
  for (size_t i = 0; i < nbytes; ++i) {
    size_t bit = i * 8;
    uint8_t byte = static_cast<uint8_t>(limbs_[bit / 64] >> (bit % 64));
    out[total - 1 - i] = static_cast<char>(byte);
  }
  return out;
}

uint64_t BigInt::Uint64() const { return limbs_.empty() ? 0 : limbs_[0]; }

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint64_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 64;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::Bit(size_t i) const {
  size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int BigInt::CompareMag(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::Compare(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_) return a.negative_ ? -1 : 1;
  int mag = CompareMag(a.limbs_, b.limbs_);
  return a.negative_ ? -mag : mag;
}

std::vector<uint64_t> BigInt::AddMag(const std::vector<uint64_t>& a,
                                     const std::vector<uint64_t>& b) {
  const std::vector<uint64_t>& big = a.size() >= b.size() ? a : b;
  const std::vector<uint64_t>& small = a.size() >= b.size() ? b : a;
  std::vector<uint64_t> out(big.size() + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < big.size(); ++i) {
    uint128 sum = static_cast<uint128>(big[i]) + carry;
    if (i < small.size()) sum += small[i];
    out[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  out[big.size()] = carry;
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<uint64_t> BigInt::SubMag(const std::vector<uint64_t>& a,
                                     const std::vector<uint64_t>& b) {
  std::vector<uint64_t> out(a.size(), 0);
  uint64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t bi = i < b.size() ? b[i] : 0;
    uint64_t ai = a[i];
    uint64_t sub = bi + borrow;
    // Detect borrow-out: sub may wrap when bi == UINT64_MAX and borrow == 1.
    uint64_t next_borrow = (sub < bi) || (ai < sub) ? 1 : 0;
    out[i] = ai - sub;
    borrow = next_borrow;
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.limbs_.empty()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt out;
  if (negative_ == other.negative_) {
    out.limbs_ = AddMag(limbs_, other.limbs_);
    out.negative_ = negative_ && !out.limbs_.empty();
    return out;
  }
  int cmp = CompareMag(limbs_, other.limbs_);
  if (cmp == 0) return out;  // zero
  if (cmp > 0) {
    out.limbs_ = SubMag(limbs_, other.limbs_);
    out.negative_ = negative_;
  } else {
    out.limbs_ = SubMag(other.limbs_, limbs_);
    out.negative_ = other.negative_;
  }
  out.Trim();
  return out;
}

BigInt BigInt::operator-(const BigInt& other) const { return *this + (-other); }

BigInt BigInt::operator*(const BigInt& other) const {
  BigInt out;
  if (is_zero() || other.is_zero()) return out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      uint128 cur = static_cast<uint128>(limbs_[i]) * other.limbs_[j] +
                    out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out.limbs_[i + other.limbs_.size()] += carry;
  }
  out.Trim();
  out.negative_ = (negative_ != other.negative_) && !out.limbs_.empty();
  return out;
}

BigInt BigInt::operator<<(size_t bits) const {
  if (is_zero() || bits == 0) {
    BigInt out = *this;
    return out;
  }
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.Trim();
  return out;
}

BigInt BigInt::operator>>(size_t bits) const {
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  BigInt out;
  if (limb_shift >= limbs_.size()) return out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.Trim();
  return out;
}

Status BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* q, BigInt* r) {
  if (b.is_zero()) return InvalidArgument("division by zero");
  // Binary long division on magnitudes: O(bits(a) * limbs(b)); plenty for
  // key generation, where this is the only consumer of full division.
  BigInt quotient;
  BigInt remainder;
  int cmp = CompareMag(a.limbs_, b.limbs_);
  if (cmp < 0) {
    *q = BigInt();
    *r = a;
    return util::OkStatus();
  }
  size_t bits = a.BitLength();
  quotient.limbs_.assign((bits + 63) / 64, 0);
  for (size_t i = bits; i-- > 0;) {
    // remainder = remainder * 2 + bit_i(a)
    remainder = remainder << 1;
    if (a.Bit(i)) {
      if (remainder.limbs_.empty()) remainder.limbs_.push_back(0);
      remainder.limbs_[0] |= 1;
    }
    if (CompareMag(remainder.limbs_, b.limbs_) >= 0) {
      remainder.limbs_ = SubMag(remainder.limbs_, b.limbs_);
      remainder.Trim();
      quotient.limbs_[i / 64] |= uint64_t{1} << (i % 64);
    }
  }
  quotient.Trim();
  quotient.negative_ = (a.negative_ != b.negative_) && !quotient.limbs_.empty();
  remainder.negative_ = a.negative_ && !remainder.limbs_.empty();
  *q = std::move(quotient);
  *r = std::move(remainder);
  return util::OkStatus();
}

Result<BigInt> BigInt::Mod(const BigInt& a, const BigInt& m) {
  if (m.is_zero() || m.is_negative()) {
    return InvalidArgument("modulus must be positive");
  }
  BigInt q, r;
  LB_RETURN_IF_ERROR(DivMod(a, m, &q, &r));
  if (r.is_negative()) r = r + m;
  return r;
}

uint64_t BigInt::ModUint64(uint64_t m) const {
  // Magnitude only; callers use this for small-prime trial division.
  uint128 rem = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    rem = ((rem << 64) | limbs_[i]) % m;
  }
  return static_cast<uint64_t>(rem);
}

Result<BigInt> BigInt::ModExp(const BigInt& base, const BigInt& exp,
                              const BigInt& m) {
  LB_ASSIGN_OR_RETURN(MontgomeryContext ctx, MontgomeryContext::Create(m));
  if (exp.is_negative()) return InvalidArgument("negative exponent");
  return ctx.ModExp(base, exp);
}

Result<BigInt> BigInt::ModInverse(const BigInt& a, const BigInt& m) {
  if (m.is_zero() || m.is_negative()) {
    return InvalidArgument("modulus must be positive");
  }
  // Extended Euclid on (a mod m, m).
  LB_ASSIGN_OR_RETURN(BigInt r0, Mod(a, m));
  BigInt r1 = m;
  BigInt s0(1), s1(0);
  while (!r1.is_zero()) {
    BigInt q, r;
    Status st = DivMod(r0, r1, &q, &r);
    if (!st.ok()) return st;
    BigInt s = s0 - q * s1;
    r0 = r1;
    r1 = r;
    s0 = s1;
    s1 = s;
  }
  if (!(r0 == BigInt(1))) {
    return InvalidArgument("not invertible: gcd != 1");
  }
  return Mod(s0, m);
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt q, r;
    Status st = DivMod(a, b, &q, &r);
    (void)st;  // b != 0 here
    a = b;
    b = r;
  }
  return a;
}

// ---------------------------------------------------------------------------
// Montgomery arithmetic
// ---------------------------------------------------------------------------

Result<MontgomeryContext> MontgomeryContext::Create(const BigInt& modulus) {
  if (modulus.is_negative() || modulus.is_zero() || !modulus.is_odd() ||
      modulus == BigInt(1)) {
    return InvalidArgument("Montgomery modulus must be odd and > 1");
  }
  MontgomeryContext ctx;
  ctx.n_ = modulus;
  ctx.k_ = modulus.limbs_.size();
  // n0_inv = -n^{-1} mod 2^64 by Newton iteration (n odd).
  uint64_t n0 = modulus.limbs_[0];
  uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) {  // 2^(2^6) >= 2^64 bits of precision
    inv *= 2 - n0 * inv;
  }
  ctx.n0_inv_ = ~inv + 1;  // -inv mod 2^64
  // r2 = (2^(64k))^2 mod n, via shift-and-reduce doubling.
  BigInt r = BigInt(1);
  size_t total_bits = 2 * 64 * ctx.k_;
  for (size_t i = 0; i < total_bits; ++i) {
    r = r << 1;
    if (BigInt::CompareMag(r.limbs_, modulus.limbs_) >= 0) {
      r.limbs_ = BigInt::SubMag(r.limbs_, modulus.limbs_);
      r.Trim();
    }
  }
  ctx.r2_ = r;
  return ctx;
}

BigInt MontgomeryContext::Redc(std::vector<uint64_t> t) const {
  // Standard word-by-word Montgomery reduction of a 2k-limb value.
  t.resize(2 * k_ + 1, 0);
  const std::vector<uint64_t>& n = n_.limbs_;
  for (size_t i = 0; i < k_; ++i) {
    uint64_t m = t[i] * n0_inv_;
    uint64_t carry = 0;
    for (size_t j = 0; j < k_; ++j) {
      uint128 cur = static_cast<uint128>(m) * n[j] + t[i + j] + carry;
      t[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    // Propagate carry.
    size_t idx = i + k_;
    while (carry != 0 && idx < t.size()) {
      uint128 cur = static_cast<uint128>(t[idx]) + carry;
      t[idx] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
      ++idx;
    }
  }
  BigInt out;
  out.limbs_.assign(t.begin() + static_cast<long>(k_), t.end());
  out.Trim();
  if (BigInt::CompareMag(out.limbs_, n) >= 0) {
    out.limbs_ = BigInt::SubMag(out.limbs_, n);
    out.Trim();
  }
  return out;
}

BigInt MontgomeryContext::MulMont(const BigInt& a, const BigInt& b) const {
  BigInt prod = a * b;
  return Redc(std::move(prod.limbs_));
}

BigInt MontgomeryContext::ToMont(const BigInt& a) const {
  return MulMont(a, r2_);
}

BigInt MontgomeryContext::FromMont(const BigInt& a) const {
  return Redc(a.limbs_);
}

BigInt MontgomeryContext::ModExp(const BigInt& base, const BigInt& exp) const {
  util::Result<BigInt> reduced = BigInt::Mod(base, n_);
  BigInt b = reduced.ok() ? reduced.value() : BigInt();
  if (exp.is_zero()) return BigInt(1);
  // 4-bit fixed-window exponentiation.
  BigInt bm = ToMont(b);
  BigInt one_m = ToMont(BigInt(1));
  std::vector<BigInt> table(16);
  table[0] = one_m;
  for (int i = 1; i < 16; ++i) table[i] = MulMont(table[i - 1], bm);
  size_t bits = exp.BitLength();
  size_t windows = (bits + 3) / 4;
  BigInt acc = one_m;
  for (size_t w = windows; w-- > 0;) {
    for (int s = 0; s < 4; ++s) acc = MulMont(acc, acc);
    int digit = 0;
    for (int s = 3; s >= 0; --s) {
      digit = (digit << 1) | (exp.Bit(w * 4 + s) ? 1 : 0);
    }
    if (digit != 0) acc = MulMont(acc, table[digit]);
  }
  return FromMont(acc);
}

// ---------------------------------------------------------------------------
// Primality
// ---------------------------------------------------------------------------

namespace {
// Small primes for trial division before Miller-Rabin.
const uint64_t kSmallPrimes[] = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263,
    269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349,
    353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421, 431, 433,
    439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521,
    523, 541, 547, 557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613,
    617, 619, 631, 641, 643, 647, 653, 659, 661, 673, 677, 683, 691, 701,
    709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797, 809,
    811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887,
    907, 911, 919, 929, 937, 941, 947, 953, 967, 971, 977, 983, 991, 997};
}  // namespace

bool IsProbablePrime(const BigInt& n, int rounds,
                     const std::function<void(uint8_t*, size_t)>& rng_bytes) {
  if (n.is_negative() || n.is_zero()) return false;
  if (n.BitLength() <= 10) {
    uint64_t v = n.Uint64();
    for (uint64_t p : kSmallPrimes) {
      if (v == p) return true;
      if (v % p == 0) return false;
    }
    return v > 1;
  }
  for (uint64_t p : kSmallPrimes) {
    if (n.ModUint64(p) == 0) return false;
  }
  if (!n.is_odd()) return false;
  // n - 1 = d * 2^s
  BigInt n_minus_1 = n - BigInt(1);
  size_t s = 0;
  BigInt d = n_minus_1;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }
  util::Result<MontgomeryContext> ctx_or = MontgomeryContext::Create(n);
  if (!ctx_or.ok()) return false;
  const MontgomeryContext& ctx = ctx_or.value();
  size_t nbytes = (n.BitLength() + 7) / 8;
  std::vector<uint8_t> buf(nbytes);
  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, n-2].
    BigInt a;
    do {
      rng_bytes(buf.data(), buf.size());
      a = BigInt::FromBytes(buf.data(), buf.size());
      util::Result<BigInt> m = BigInt::Mod(a, n - BigInt(3));
      a = m.ok() ? m.value() + BigInt(2) : BigInt(2);
    } while (a >= n - BigInt(1) || a <= BigInt(1));
    BigInt x = ctx.ModExp(a, d);
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool witness = true;
    for (size_t i = 0; i + 1 < s; ++i) {
      x = ctx.ModExp(x, BigInt(2));
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

}  // namespace lbtrust::crypto
