#include "crypto/sha1.h"

#include <cstring>

#include "util/strings.h"

namespace lbtrust::crypto {

namespace {
inline uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }
}  // namespace

void Sha1::Reset() {
  state_[0] = 0x67452301;
  state_[1] = 0xEFCDAB89;
  state_[2] = 0x98BADCFE;
  state_[3] = 0x10325476;
  state_[4] = 0xC3D2E1F0;
  length_ = 0;
  buffered_ = 0;
}

void Sha1::ProcessBlock(const uint8_t block[kBlockSize]) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
           e = state_[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    uint32_t tmp = Rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl(b, 30);
    b = a;
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::Update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  length_ += len;
  while (len > 0) {
    size_t take = std::min(len, kBlockSize - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    len -= take;
    if (buffered_ == kBlockSize) {
      ProcessBlock(buffer_);
      buffered_ = 0;
    }
  }
}

void Sha1::Final(uint8_t out[kDigestSize]) {
  uint64_t bit_len = length_ * 8;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  while (buffered_ != 56) Update(&zero, 1);
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - i * 8));
  }
  Update(len_bytes, 8);
  for (int i = 0; i < 5; ++i) {
    out[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
}

std::string Sha1::Digest(std::string_view data) {
  Sha1 h;
  h.Update(data);
  uint8_t out[kDigestSize];
  h.Final(out);
  return std::string(reinterpret_cast<char*>(out), kDigestSize);
}

std::string Sha1::HexDigest(std::string_view data) {
  return util::HexEncode(Digest(data));
}

}  // namespace lbtrust::crypto
