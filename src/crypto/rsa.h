#ifndef LBTRUST_CRYPTO_RSA_H_
#define LBTRUST_CRYPTO_RSA_H_

#include <string>
#include <string_view>

#include "crypto/bigint.h"
#include "crypto/secure_random.h"
#include "util/status.h"

namespace lbtrust::crypto {

/// RSA public key (n, e).
struct RsaPublicKey {
  BigInt n;
  BigInt e;

  /// Modulus size in bytes (signature length).
  size_t ModulusBytes() const { return (n.BitLength() + 7) / 8; }

  /// Compact serialization "n_hex:e_hex" for key distribution in policies.
  std::string Serialize() const;
  static util::Result<RsaPublicKey> Deserialize(std::string_view text);
};

/// RSA private key with CRT components for fast signing.
struct RsaPrivateKey {
  BigInt n;
  BigInt e;
  BigInt d;
  BigInt p;
  BigInt q;
  BigInt dp;    // d mod (p-1)
  BigInt dq;    // d mod (q-1)
  BigInt qinv;  // q^{-1} mod p

  RsaPublicKey PublicKey() const { return RsaPublicKey{n, e}; }

  std::string Serialize() const;
  static util::Result<RsaPrivateKey> Deserialize(std::string_view text);
};

struct RsaKeyPair {
  RsaPrivateKey private_key;
  RsaPublicKey public_key;
};

/// Generates an RSA key pair with an exactly `bits`-wide modulus
/// (paper: 1024) and e = 65537. Deterministic given the RNG state.
util::Result<RsaKeyPair> RsaGenerateKeyPair(size_t bits, SecureRandom* rng);

/// Short public-key fingerprint: 16 lowercase hex chars of SHA-1(n_hex).
/// This is the identity that appears in KeyStore handles ("rsa:pub:<fp>")
/// and inside credentials, so both layers must agree on it.
std::string KeyFingerprint(const RsaPublicKey& key);

/// EMSA-PKCS1-v1_5 signature over SHA-1(message); returns raw signature
/// bytes of modulus width. This is the paper's `rsasign` built-in.
util::Result<std::string> RsaSign(const RsaPrivateKey& key,
                                  std::string_view message);

/// Verifies an RsaSign signature; `rsaverify` built-in.
bool RsaVerify(const RsaPublicKey& key, std::string_view message,
               std::string_view signature);

/// Raw RSA encryption of a short message (for the confidentiality
/// primitives): PKCS#1 v1.5 type-2 padding with the given RNG.
util::Result<std::string> RsaEncrypt(const RsaPublicKey& key,
                                     std::string_view plaintext,
                                     SecureRandom* rng);
util::Result<std::string> RsaDecrypt(const RsaPrivateKey& key,
                                     std::string_view ciphertext);

}  // namespace lbtrust::crypto

#endif  // LBTRUST_CRYPTO_RSA_H_
