#include "crypto/rsa.h"

#include "crypto/sha1.h"
#include "util/strings.h"

namespace lbtrust::crypto {

using util::CryptoError;
using util::InvalidArgument;
using util::Result;

namespace {

// DER DigestInfo prefix for SHA-1 (RFC 3447 §9.2).
const uint8_t kSha1DigestInfo[] = {0x30, 0x21, 0x30, 0x09, 0x06,
                                   0x05, 0x2b, 0x0e, 0x03, 0x02,
                                   0x1a, 0x05, 0x00, 0x04, 0x14};

// Builds the EMSA-PKCS1-v1_5 encoding of SHA-1(message) at width k.
Result<std::string> EmsaEncode(std::string_view message, size_t k) {
  std::string digest = Sha1::Digest(message);
  size_t t_len = sizeof(kSha1DigestInfo) + digest.size();
  if (k < t_len + 11) return InvalidArgument("modulus too small for EMSA");
  std::string em;
  em.reserve(k);
  em.push_back('\0');
  em.push_back('\x01');
  em.append(k - t_len - 3, '\xff');
  em.push_back('\0');
  em.append(reinterpret_cast<const char*>(kSha1DigestInfo),
            sizeof(kSha1DigestInfo));
  em.append(digest);
  return em;
}

// CRT exponentiation m = c^d mod n.
Result<BigInt> PrivateOp(const RsaPrivateKey& key, const BigInt& c) {
  if (c >= key.n) return InvalidArgument("input out of range");
  if (key.p.is_zero() || key.q.is_zero()) {
    // No CRT components (deserialized minimal key): fall back to plain d.
    return BigInt::ModExp(c, key.d, key.n);
  }
  LB_ASSIGN_OR_RETURN(BigInt m1, BigInt::ModExp(c, key.dp, key.p));
  LB_ASSIGN_OR_RETURN(BigInt m2, BigInt::ModExp(c, key.dq, key.q));
  // h = qinv * (m1 - m2) mod p ; m = m2 + h * q
  BigInt diff = m1 - m2;
  LB_ASSIGN_OR_RETURN(BigInt h, BigInt::Mod(key.qinv * diff, key.p));
  return m2 + h * key.q;
}

}  // namespace

std::string RsaPublicKey::Serialize() const {
  return util::StrCat(n.ToHex(), ":", e.ToHex());
}

Result<RsaPublicKey> RsaPublicKey::Deserialize(std::string_view text) {
  std::vector<std::string> parts = util::Split(text, ':');
  if (parts.size() != 2) return InvalidArgument("expected n:e");
  RsaPublicKey key;
  LB_ASSIGN_OR_RETURN(key.n, BigInt::FromHex(parts[0]));
  LB_ASSIGN_OR_RETURN(key.e, BigInt::FromHex(parts[1]));
  return key;
}

std::string RsaPrivateKey::Serialize() const {
  return util::StrCat(n.ToHex(), ":", e.ToHex(), ":", d.ToHex(), ":",
                      p.ToHex(), ":", q.ToHex(), ":", dp.ToHex(), ":",
                      dq.ToHex(), ":", qinv.ToHex());
}

Result<RsaPrivateKey> RsaPrivateKey::Deserialize(std::string_view text) {
  std::vector<std::string> parts = util::Split(text, ':');
  if (parts.size() != 8) return InvalidArgument("expected 8 fields");
  RsaPrivateKey key;
  LB_ASSIGN_OR_RETURN(key.n, BigInt::FromHex(parts[0]));
  LB_ASSIGN_OR_RETURN(key.e, BigInt::FromHex(parts[1]));
  LB_ASSIGN_OR_RETURN(key.d, BigInt::FromHex(parts[2]));
  LB_ASSIGN_OR_RETURN(key.p, BigInt::FromHex(parts[3]));
  LB_ASSIGN_OR_RETURN(key.q, BigInt::FromHex(parts[4]));
  LB_ASSIGN_OR_RETURN(key.dp, BigInt::FromHex(parts[5]));
  LB_ASSIGN_OR_RETURN(key.dq, BigInt::FromHex(parts[6]));
  LB_ASSIGN_OR_RETURN(key.qinv, BigInt::FromHex(parts[7]));
  return key;
}

Result<RsaKeyPair> RsaGenerateKeyPair(size_t bits, SecureRandom* rng) {
  if (bits < 128 || bits % 2 != 0) {
    return InvalidArgument("modulus bits must be even and >= 128");
  }
  auto rng_bytes = [rng](uint8_t* out, size_t len) { rng->Bytes(out, len); };
  const BigInt e(65537);
  size_t half = bits / 2;
  for (int attempt = 0; attempt < 64; ++attempt) {
    BigInt p, q;
    do {
      p = rng->RandomPrimeCandidate(half);
    } while (!IsProbablePrime(p, 24, rng_bytes));
    do {
      q = rng->RandomPrimeCandidate(half);
    } while (q == p || !IsProbablePrime(q, 24, rng_bytes));

    BigInt n = p * q;
    if (n.BitLength() != bits) continue;  // rare with top-2-bits forced
    BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
    if (!(BigInt::Gcd(e, phi) == BigInt(1))) continue;

    RsaPrivateKey priv;
    priv.n = n;
    priv.e = e;
    LB_ASSIGN_OR_RETURN(priv.d, BigInt::ModInverse(e, phi));
    priv.p = p;
    priv.q = q;
    {
      BigInt qd, rem;
      LB_RETURN_IF_ERROR(BigInt::DivMod(priv.d, p - BigInt(1), &qd, &rem));
      priv.dp = rem;
      LB_RETURN_IF_ERROR(BigInt::DivMod(priv.d, q - BigInt(1), &qd, &rem));
      priv.dq = rem;
    }
    LB_ASSIGN_OR_RETURN(priv.qinv, BigInt::ModInverse(q, p));
    return RsaKeyPair{priv, priv.PublicKey()};
  }
  return CryptoError("key generation did not converge");
}

Result<std::string> RsaSign(const RsaPrivateKey& key,
                            std::string_view message) {
  size_t k = (key.n.BitLength() + 7) / 8;
  LB_ASSIGN_OR_RETURN(std::string em, EmsaEncode(message, k));
  BigInt m = BigInt::FromBytes(em);
  LB_ASSIGN_OR_RETURN(BigInt s, PrivateOp(key, m));
  return s.ToBytes(k);
}

bool RsaVerify(const RsaPublicKey& key, std::string_view message,
               std::string_view signature) {
  size_t k = (key.n.BitLength() + 7) / 8;
  if (signature.size() != k) return false;
  BigInt s = BigInt::FromBytes(
      reinterpret_cast<const uint8_t*>(signature.data()), signature.size());
  if (s >= key.n) return false;
  util::Result<BigInt> m = BigInt::ModExp(s, key.e, key.n);
  if (!m.ok()) return false;
  util::Result<std::string> em = EmsaEncode(message, k);
  if (!em.ok()) return false;
  return m->ToBytes(k) == *em;
}

Result<std::string> RsaEncrypt(const RsaPublicKey& key,
                               std::string_view plaintext,
                               SecureRandom* rng) {
  size_t k = key.ModulusBytes();
  if (plaintext.size() + 11 > k) return InvalidArgument("plaintext too long");
  // EME-PKCS1-v1_5: 0x00 0x02 PS 0x00 M with PS nonzero random bytes.
  std::string em;
  em.reserve(k);
  em.push_back('\0');
  em.push_back('\x02');
  size_t ps_len = k - plaintext.size() - 3;
  for (size_t i = 0; i < ps_len; ++i) {
    uint8_t b = 0;
    while (b == 0) rng->Bytes(&b, 1);
    em.push_back(static_cast<char>(b));
  }
  em.push_back('\0');
  em.append(plaintext);
  BigInt m = BigInt::FromBytes(em);
  LB_ASSIGN_OR_RETURN(BigInt c, BigInt::ModExp(m, key.e, key.n));
  return c.ToBytes(k);
}

Result<std::string> RsaDecrypt(const RsaPrivateKey& key,
                               std::string_view ciphertext) {
  size_t k = (key.n.BitLength() + 7) / 8;
  if (ciphertext.size() != k) return CryptoError("bad ciphertext length");
  BigInt c = BigInt::FromBytes(
      reinterpret_cast<const uint8_t*>(ciphertext.data()), ciphertext.size());
  LB_ASSIGN_OR_RETURN(BigInt m, PrivateOp(key, c));
  std::string em = m.ToBytes(k);
  if (em.size() < 11 || em[0] != '\0' || em[1] != '\x02') {
    return CryptoError("bad padding");
  }
  size_t i = 2;
  while (i < em.size() && em[i] != '\0') ++i;
  if (i == em.size() || i < 10) return CryptoError("bad padding");
  return em.substr(i + 1);
}

std::string KeyFingerprint(const RsaPublicKey& key) {
  return util::HexEncode(Sha1::Digest(key.n.ToHex())).substr(0, 16);
}

}  // namespace lbtrust::crypto
