#ifndef LBTRUST_CRYPTO_BIGINT_H_
#define LBTRUST_CRYPTO_BIGINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace lbtrust::crypto {

/// Arbitrary-precision signed integer with little-endian 64-bit limbs.
///
/// This is the arithmetic substrate for the RSA implementation (the paper's
/// `rsasign`/`rsaverify` built-ins use 1024-bit RSA). Only the operations the
/// trust layer needs are provided: ring arithmetic, comparison, shifting,
/// division, modular exponentiation (via Montgomery reduction, see
/// MontgomeryContext), modular inverse, and Miller-Rabin primality.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// From a signed machine integer.
  explicit BigInt(int64_t v);

  static BigInt FromUint64(uint64_t v);
  /// Parses lowercase/uppercase hex (no 0x prefix, may be empty => 0).
  static util::Result<BigInt> FromHex(std::string_view hex);
  /// Big-endian unsigned bytes -> non-negative integer.
  static BigInt FromBytes(const uint8_t* data, size_t len);
  static BigInt FromBytes(const std::string& bytes);

  /// Lowercase hex, no leading zeros ("0" for zero), "-" prefix if negative.
  std::string ToHex() const;
  /// Big-endian magnitude bytes, zero-padded on the left to `width` (0 = no
  /// padding). Sign is discarded.
  std::string ToBytes(size_t width = 0) const;
  /// Low 64 bits of the magnitude.
  uint64_t Uint64() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  /// Number of significant bits of the magnitude (0 for zero).
  size_t BitLength() const;
  /// Value of bit `i` of the magnitude.
  bool Bit(size_t i) const;

  /// Three-way comparison (-1, 0, +1) respecting sign.
  static int Compare(const BigInt& a, const BigInt& b);

  BigInt operator-() const;
  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  BigInt operator<<(size_t bits) const;
  BigInt operator>>(size_t bits) const;

  /// Truncated division: q = a / b rounded toward zero, r has sign of a.
  /// Fails on division by zero.
  static util::Status DivMod(const BigInt& a, const BigInt& b, BigInt* q,
                             BigInt* r);
  /// Non-negative remainder a mod m (m > 0).
  static util::Result<BigInt> Mod(const BigInt& a, const BigInt& m);
  /// Magnitude modulo a small modulus; requires m != 0 and *this >= 0.
  uint64_t ModUint64(uint64_t m) const;

  /// (base ^ exp) mod m for m odd > 1, exp >= 0. Montgomery ladder inside.
  static util::Result<BigInt> ModExp(const BigInt& base, const BigInt& exp,
                                     const BigInt& m);
  /// Multiplicative inverse of a modulo m (extended Euclid); fails if
  /// gcd(a, m) != 1.
  static util::Result<BigInt> ModInverse(const BigInt& a, const BigInt& m);
  static BigInt Gcd(BigInt a, BigInt b);

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) != 0;
  }
  friend bool operator<(const BigInt& a, const BigInt& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) >= 0;
  }

  const std::vector<uint64_t>& limbs() const { return limbs_; }

 private:
  friend class MontgomeryContext;

  void Trim();
  // Magnitude helpers ignoring sign.
  static std::vector<uint64_t> AddMag(const std::vector<uint64_t>& a,
                                      const std::vector<uint64_t>& b);
  // Requires |a| >= |b|.
  static std::vector<uint64_t> SubMag(const std::vector<uint64_t>& a,
                                      const std::vector<uint64_t>& b);
  static int CompareMag(const std::vector<uint64_t>& a,
                        const std::vector<uint64_t>& b);

  std::vector<uint64_t> limbs_;  // little-endian, no trailing zero limbs
  bool negative_ = false;        // never set when limbs_ is empty
};

/// Precomputed Montgomery domain for a fixed odd modulus; makes repeated
/// modular multiplication (the RSA hot path) division-free.
class MontgomeryContext {
 public:
  /// `modulus` must be odd and > 1.
  static util::Result<MontgomeryContext> Create(const BigInt& modulus);

  const BigInt& modulus() const { return n_; }

  /// Converts into / out of the Montgomery domain.
  BigInt ToMont(const BigInt& a) const;
  BigInt FromMont(const BigInt& a) const;
  /// Montgomery product of two in-domain values.
  BigInt MulMont(const BigInt& a, const BigInt& b) const;
  /// (base ^ exp) mod n with base in the normal domain; 4-bit window.
  BigInt ModExp(const BigInt& base, const BigInt& exp) const;

 private:
  MontgomeryContext() = default;

  BigInt Redc(std::vector<uint64_t> t) const;

  BigInt n_;
  uint64_t n0_inv_ = 0;  // -n^{-1} mod 2^64
  BigInt r2_;            // R^2 mod n, R = 2^(64*k)
  size_t k_ = 0;         // limb count of n
};

/// Miller-Rabin probabilistic primality test; `rounds` random bases drawn
/// from `rng_bytes` (a callable producing uniform random bytes).
/// Deterministic small-prime trial division happens first.
bool IsProbablePrime(const BigInt& n, int rounds,
                     const std::function<void(uint8_t*, size_t)>& rng_bytes);

}  // namespace lbtrust::crypto

#endif  // LBTRUST_CRYPTO_BIGINT_H_
