#ifndef LBTRUST_CRYPTO_CRC32_H_
#define LBTRUST_CRYPTO_CRC32_H_

#include <cstdint>
#include <string_view>

namespace lbtrust::crypto {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). Backs the paper's
/// lightweight integrity checksum built-in (§4.1.3) — not a cryptographic
/// primitive, an error-detection code.
uint32_t Crc32(std::string_view data);

}  // namespace lbtrust::crypto

#endif  // LBTRUST_CRYPTO_CRC32_H_
