#ifndef LBTRUST_CRYPTO_SHA256_H_
#define LBTRUST_CRYPTO_SHA256_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace lbtrust::crypto {

/// Incremental SHA-256 (FIPS 180-4). Used for the integrity built-ins and as
/// the block function of the deterministic DRBG and the stream cipher.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(std::string_view data) { Update(data.data(), data.size()); }
  void Final(uint8_t out[kDigestSize]);

  static std::string Digest(std::string_view data);
  static std::string HexDigest(std::string_view data);

 private:
  void ProcessBlock(const uint8_t block[kBlockSize]);

  uint32_t state_[8];
  uint64_t length_ = 0;
  uint8_t buffer_[kBlockSize];
  size_t buffered_ = 0;
};

}  // namespace lbtrust::crypto

#endif  // LBTRUST_CRYPTO_SHA256_H_
