#ifndef LBTRUST_CRYPTO_SECURE_RANDOM_H_
#define LBTRUST_CRYPTO_SECURE_RANDOM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "crypto/bigint.h"

namespace lbtrust::crypto {

/// Deterministic hash-based DRBG (SHA-256 in counter mode over a seed).
///
/// Seedable so key generation and the benchmark harness are reproducible
/// run-to-run; seed from OS entropy for non-test use via SeedFromSystem().
class SecureRandom {
 public:
  /// Deterministic stream from a fixed seed.
  explicit SecureRandom(uint64_t seed);
  explicit SecureRandom(std::string_view seed);

  /// Mixes in std::random_device entropy.
  static SecureRandom FromSystem();

  /// Fills `out` with the next `len` pseudorandom bytes.
  void Bytes(uint8_t* out, size_t len);
  std::string Bytes(size_t len);

  uint64_t NextUint64();
  /// Uniform in [0, bound) for bound > 0 (rejection sampling).
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer with exactly `bits` significant bits (top bit set).
  BigInt RandomBits(size_t bits);
  /// Random odd integer with exactly `bits` bits and the two top bits set
  /// (standard trick so that p*q reaches the full modulus width).
  BigInt RandomPrimeCandidate(size_t bits);

 private:
  void Refill();

  std::string seed_;
  uint64_t counter_ = 0;
  uint8_t block_[32];
  size_t pos_ = 32;  // forces refill on first use
};

}  // namespace lbtrust::crypto

#endif  // LBTRUST_CRYPTO_SECURE_RANDOM_H_
