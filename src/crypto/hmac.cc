#include "crypto/hmac.h"

#include <cstdint>

#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace lbtrust::crypto {

namespace {

template <typename Hash>
std::string HmacImpl(std::string_view key, std::string_view message) {
  std::string k(key);
  if (k.size() > Hash::kBlockSize) k = Hash::Digest(k);
  k.resize(Hash::kBlockSize, '\0');

  std::string inner(Hash::kBlockSize, '\0');
  std::string outer(Hash::kBlockSize, '\0');
  for (size_t i = 0; i < Hash::kBlockSize; ++i) {
    inner[i] = static_cast<char>(k[i] ^ 0x36);
    outer[i] = static_cast<char>(k[i] ^ 0x5c);
  }

  Hash h;
  h.Update(inner);
  h.Update(message);
  uint8_t inner_digest[Hash::kDigestSize];
  h.Final(inner_digest);

  Hash h2;
  h2.Update(outer);
  h2.Update(inner_digest, Hash::kDigestSize);
  uint8_t out[Hash::kDigestSize];
  h2.Final(out);
  return std::string(reinterpret_cast<char*>(out), Hash::kDigestSize);
}

}  // namespace

std::string HmacSha1(std::string_view key, std::string_view message) {
  return HmacImpl<Sha1>(key, message);
}

std::string HmacSha256(std::string_view key, std::string_view message) {
  return HmacImpl<Sha256>(key, message);
}

bool ConstantTimeEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  unsigned char diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<unsigned char>(a[i]) ^ static_cast<unsigned char>(b[i]);
  }
  return diff == 0;
}

}  // namespace lbtrust::crypto
