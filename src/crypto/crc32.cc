#include "crypto/crc32.h"

#include <array>

namespace lbtrust::crypto {

namespace {
constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
constexpr std::array<uint32_t, 256> kTable = MakeTable();
}  // namespace

uint32_t Crc32(std::string_view data) {
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char c : data) {
    crc = kTable[(crc ^ c) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace lbtrust::crypto
