// Socket-path macro-benchmark: wall-clock convergence of a real 3-node
// localhost TCP mesh (one DistributedCluster per thread, ephemeral ports)
// against the same workload on the simulated in-memory cluster.
//
// The workload is the delegation chain scaled by N: node a derives N
// export tuples from go(i) facts and ships them to b, b re-exports every
// learned token to c — 2N tuples cross the wire per run. Reported
// counters: tuples/s through the socket path (items_per_second) and
// wire bytes per shipped tuple (bytes_per_tuple), the socket analogue of
// the simulated cluster's tuple_bytes accounting.
#include <benchmark/benchmark.h>

#include <string>
#include <thread>
#include <vector>

#include "net/cluster.h"
#include "net/distributed.h"
#include "util/strings.h"

namespace {

using lbtrust::net::Cluster;
using lbtrust::net::DistributedCluster;
using lbtrust::trust::TrustRuntime;

constexpr const char* kNodes[] = {"a", "b", "c"};

lbtrust::util::Status SetupNode(const std::string& name, TrustRuntime* rt,
                                int n) {
  if (name == "a") {
    LB_RETURN_IF_ERROR(rt->Load("says(me,b,[| token(N). |]) <- go(N)."));
    std::string facts;
    for (int i = 0; i < n; ++i) {
      facts += lbtrust::util::StrCat("go(", std::to_string(i), "). ");
    }
    return rt->workspace()->AddFactText(facts);
  }
  if (name == "b") {
    return rt->Load("says(me,c,[| token(N). |]) <- token(N).");
  }
  return lbtrust::util::OkStatus();
}

void BM_DistributedConvergence(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  size_t tuples = 0;
  uint64_t wire_bytes = 0;
  for (auto _ : state) {
    std::vector<std::unique_ptr<DistributedCluster>> nodes;
    for (const char* name : kNodes) {
      DistributedCluster::Options opts;
      opts.self = name;
      opts.nodes = {"a", "b", "c"};
      opts.scheme = "rsa";
      opts.runtime.rsa_bits = 512;
      opts.poll_interval_ms = 1;
      opts.status_heartbeat_ms = 20;
      opts.linger_ms = 20;  // in-process mesh: no startup connect races
      auto node = DistributedCluster::Create(std::move(opts));
      if (!node.ok()) state.SkipWithError(node.status().ToString().c_str());
      nodes.push_back(std::move(*node));
    }
    for (size_t i = 0; i < nodes.size(); ++i) {
      for (size_t j = 0; j < nodes.size(); ++j) {
        if (i == j) continue;
        (void)nodes[i]->AddPeer(kNodes[j], "127.0.0.1",
                                nodes[j]->listen_port());
      }
      if (!SetupNode(kNodes[i], nodes[i]->runtime(), n).ok()) {
        state.SkipWithError("setup failed");
      }
    }
    std::vector<std::thread> threads;
    std::vector<DistributedCluster::RunStats> stats(nodes.size());
    bool failed = false;
    for (size_t i = 0; i < nodes.size(); ++i) {
      threads.emplace_back([&, i] {
        auto r = nodes[i]->RunToConvergence();
        if (r.ok()) {
          stats[i] = *r;
        } else {
          failed = true;
        }
      });
    }
    for (std::thread& t : threads) t.join();
    if (failed) state.SkipWithError("convergence failed");
    for (const auto& s : stats) {
      tuples += s.tuples_out;
      wire_bytes += s.transport.tuple_bytes_out;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  if (tuples != 0) {
    state.counters["bytes_per_tuple"] = benchmark::Counter(
        static_cast<double>(wire_bytes) / static_cast<double>(tuples));
  }
}
BENCHMARK(BM_DistributedConvergence)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The same workload on the simulated cluster: the in-memory baseline the
// socket path's overhead is judged against.
void BM_SimulatedConvergence(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  size_t tuples = 0;
  for (auto _ : state) {
    Cluster::Options copts;
    copts.scheme = "rsa";
    Cluster cluster(copts);
    TrustRuntime::Options ropts;
    ropts.rsa_bits = 512;
    for (const char* name : kNodes) {
      if (!cluster.AddNode(name, ropts).ok()) {
        state.SkipWithError("node setup failed");
      }
    }
    if (!cluster.Connect().ok()) state.SkipWithError("connect failed");
    for (const char* name : kNodes) {
      if (!SetupNode(name, cluster.node(name), n).ok()) {
        state.SkipWithError("setup failed");
      }
    }
    auto stats = cluster.Run();
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    tuples += stats->tuples;
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
}
BENCHMARK(BM_SimulatedConvergence)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace
