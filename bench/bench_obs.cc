// Observability overhead (ISSUE 7 acceptance): raw instrument update cost
// (counter add, histogram observe, scoped span) and the end-to-end cost of
// an instrumented fixpoint vs the same fixpoint with Options::metrics off.
// The off path must bench within noise of the pre-registry engine, and the
// on path within a few percent — hot-path updates are a relaxed atomic add
// and probe tallies are plain context-local uint64_t folded per rule.
#include <benchmark/benchmark.h>

#include "datalog/value.h"
#include "datalog/workspace.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using lbtrust::datalog::Value;
using lbtrust::datalog::Workspace;
using lbtrust::obs::Histogram;
using lbtrust::obs::MetricsRegistry;
using lbtrust::obs::ScopedSpan;
using lbtrust::obs::Tracer;

void BM_CounterAdd(benchmark::State& state) {
  MetricsRegistry reg;
  lbtrust::obs::Counter* c = reg.GetCounter("lbtrust_bench_total");
  for (auto _ : state) {
    c->Add(1);
  }
  benchmark::DoNotOptimize(c->value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("lbtrust_bench_latency");
  uint64_t v = 0;
  for (auto _ : state) {
    h->Observe(v++ & 0xFFFF);
  }
  benchmark::DoNotOptimize(h->count());
}
BENCHMARK(BM_HistogramObserve);

// Spans accumulate in the tracer until export, so a fresh tracer per
// batch keeps the bench memory-bounded; the reported time is per batch of
// 4096 spans (items/s gives the per-span rate).
void BM_ScopedSpanBatch(benchmark::State& state) {
  constexpr int kBatch = 4096;
  for (auto _ : state) {
    Tracer tracer;
    for (int i = 0; i < kBatch; ++i) {
      ScopedSpan span(&tracer, "bench");
    }
    benchmark::DoNotOptimize(tracer.event_count());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ScopedSpanBatch);

void BM_RegistryRenderText(benchmark::State& state) {
  MetricsRegistry reg;
  for (int i = 0; i < 64; ++i) {
    std::string labels = "rule=\"" + std::to_string(i) + "\"";
    reg.GetCounter("lbtrust_rule_evals_total", labels)->Add(i);
    reg.GetHistogram("lbtrust_latency", labels)->Observe(i * 37);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.RenderText());
  }
}
BENCHMARK(BM_RegistryRenderText);

// Chain with a back edge, as BM_TransitiveClosureSemiNaive in bench_engine:
// the canonical fixpoint workload, here parameterized on Options::metrics
// (arg 1: 0 = off, 1 = on) so the instrumentation overhead is a direct
// A/B on otherwise identical runs.
void BM_FixpointMetrics(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool metrics = state.range(1) != 0;
  for (auto _ : state) {
    Workspace::Options opts;
    opts.threads = 1;
    opts.metrics = metrics;
    Workspace ws(opts);
    (void)ws.Load("path(X,Y) <- edge(X,Y).\n"
                  "path(X,Z) <- path(X,Y), edge(Y,Z).");
    for (int i = 0; i + 1 < n; ++i) {
      (void)ws.AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
    }
    (void)ws.AddFact("edge", {Value::Int(n - 1), Value::Int(0)});
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(ws.GetRelation("path"));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_FixpointMetrics)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1});

// Same A/B with the tracer attached on top of metrics: spans are recorded
// per fixpoint/stratum/rule, so this bounds the full-observability cost.
void BM_FixpointTraced(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Tracer tracer;  // fresh per iteration so the span buffer stays bounded
    Workspace ws;
    ws.SetTracer(&tracer);
    (void)ws.Load("path(X,Y) <- edge(X,Y).\n"
                  "path(X,Z) <- path(X,Y), edge(Y,Z).");
    for (int i = 0; i + 1 < n; ++i) {
      (void)ws.AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
    }
    (void)ws.AddFact("edge", {Value::Int(n - 1), Value::Int(0)});
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(ws.GetRelation("path"));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_FixpointTraced)->Arg(64)->Arg(128);

// The live-introspection acceptance gate: the same instrumented fixpoint
// as BM_FixpointMetrics/N/1, but with an HTTP exporter listening (no
// clients connected) and polled once per iteration — exactly the idle
// per-wave cost DistributedCluster pays for having /metrics attached.
// Must bench within noise of BM_FixpointMetrics.
void BM_FixpointWithHttpExporter(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  lbtrust::obs::HttpExporter exporter(nullptr);
  exporter.Handle("/metrics", [] {
    lbtrust::obs::HttpExporter::Response r;
    r.body = "lbtrust_up 1\n";
    return r;
  });
  if (!exporter.Listen("127.0.0.1", 0).ok()) {
    state.SkipWithError("exporter listen failed");
    return;
  }
  for (auto _ : state) {
    Workspace::Options opts;
    opts.threads = 1;
    opts.metrics = true;
    Workspace ws(opts);
    (void)ws.Load("path(X,Y) <- edge(X,Y).\n"
                  "path(X,Z) <- path(X,Y), edge(Y,Z).");
    for (int i = 0; i + 1 < n; ++i) {
      (void)ws.AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
    }
    (void)ws.AddFact("edge", {Value::Int(n - 1), Value::Int(0)});
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    (void)exporter.Poll(0);
    benchmark::DoNotOptimize(ws.GetRelation("path"));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_FixpointWithHttpExporter)->Arg(64)->Arg(128);

}  // namespace
