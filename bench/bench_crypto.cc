// Crypto ablation bench: per-operation cost of the primitives behind the
// paper's three `says` authentication schemes. Explains the gaps between the
// RSA / HMAC / Plaintext curves in Figure 2.
#include <string>

#include <benchmark/benchmark.h>

#include "crypto/crc32.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/secure_random.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"
#include "crypto/stream_cipher.h"

namespace {

using namespace lbtrust::crypto;  // NOLINT: bench file

const char kMessage[] =
    "says(alice,bob,[|reachable(alice,carol).|]) #4242";

RsaKeyPair& Key1024() {
  static RsaKeyPair* kp = [] {
    SecureRandom rng(uint64_t{2009});
    auto r = RsaGenerateKeyPair(1024, &rng);
    return new RsaKeyPair(r.value());
  }();
  return *kp;
}

void BM_Sha1(benchmark::State& state) {
  std::string msg(static_cast<size_t>(state.range(0)), 'm');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Digest(msg));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  std::string msg(static_cast<size_t>(state.range(0)), 'm');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Digest(msg));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSha1Sign(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha1("sharedsecret-alice-bob", kMessage));
  }
}
BENCHMARK(BM_HmacSha1Sign);

void BM_RsaSign1024(benchmark::State& state) {
  RsaKeyPair& kp = Key1024();
  for (auto _ : state) {
    auto sig = RsaSign(kp.private_key, kMessage);
    benchmark::DoNotOptimize(sig);
  }
}
BENCHMARK(BM_RsaSign1024);

void BM_RsaVerify1024(benchmark::State& state) {
  RsaKeyPair& kp = Key1024();
  std::string sig = RsaSign(kp.private_key, kMessage).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaVerify(kp.public_key, kMessage, sig));
  }
}
BENCHMARK(BM_RsaVerify1024);

void BM_RsaKeygen512(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    SecureRandom rng(seed++);
    auto kp = RsaGenerateKeyPair(512, &rng);
    benchmark::DoNotOptimize(kp);
  }
}
BENCHMARK(BM_RsaKeygen512)->Unit(benchmark::kMillisecond);

void BM_Crc32(benchmark::State& state) {
  std::string msg(1024, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(msg));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Crc32);

void BM_SealedBoxRoundTrip(benchmark::State& state) {
  std::string pt(256, 'p');
  for (auto _ : state) {
    std::string sealed = SealedBox("key", "nonce", pt);
    std::string out;
    bool ok = SealedOpen("key", sealed, &out);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_SealedBoxRoundTrip);

}  // namespace
