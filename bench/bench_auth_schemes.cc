// §4.1.2 ablation: the cost of reconfiguring the `says` authentication
// scheme. Reports (a) how many clauses change per swap — the paper's
// "only two rules (exp1' and exp3') need to be modified" — and (b) the
// per-message runtime of a fixed-size exchange under each scheme.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "net/cluster.h"
#include "trust/auth_scheme.h"

namespace {

using lbtrust::net::Cluster;
using lbtrust::trust::AuthScheme;
using lbtrust::trust::HmacScheme;
using lbtrust::trust::PlaintextScheme;
using lbtrust::trust::RsaScheme;
using lbtrust::trust::TrustRuntime;

double TimeExchange(const char* scheme, int messages) {
  Cluster::Options copts;
  copts.scheme = scheme;
  Cluster cluster(copts);
  TrustRuntime::Options ropts;
  ropts.rsa_bits = 1024;
  (void)cluster.AddNode("alice", ropts);
  (void)cluster.AddNode("bob", ropts);
  if (!cluster.Connect().ok()) std::exit(1);
  if (!cluster.node("alice")
           ->Load("says(me,bob,[| ping(N). |]) <- msg(N).")
           .ok()) {
    std::exit(1);
  }
  for (int i = 0; i < messages; ++i) {
    (void)cluster.node("alice")->workspace()->AddFact(
        "msg", {lbtrust::datalog::Value::Int(i)});
  }
  auto start = std::chrono::steady_clock::now();
  auto stats = cluster.Run();
  auto end = std::chrono::steady_clock::now();
  if (!stats.ok()) std::exit(1);
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  int messages = argc > 1 ? std::atoi(argv[1]) : 2000;

  RsaScheme rsa;
  HmacScheme hmac;
  PlaintextScheme plaintext;

  std::printf("# Scheme reconfiguration cost (clauses changed per swap)\n");
  std::printf("swap,clauses_changed\n");
  std::printf("rsa->hmac,%d\n", AuthScheme::CountDifferingRules(rsa, hmac));
  std::printf("hmac->rsa,%d\n", AuthScheme::CountDifferingRules(hmac, rsa));
  std::printf("rsa->plaintext,%d\n",
              AuthScheme::CountDifferingRules(rsa, plaintext));
  std::printf("plaintext->hmac,%d\n",
              AuthScheme::CountDifferingRules(plaintext, hmac));

  // Live swap on a runtime (includes removing the old clauses).
  TrustRuntime::Options opts;
  opts.principal = "alice";
  opts.rsa_bits = 512;
  auto rt = TrustRuntime::Create(opts);
  if (!rt.ok()) return 1;
  (void)(*rt)->UseScheme(rsa);
  auto changed = (*rt)->UseScheme(hmac);
  std::printf("live_swap_rsa_to_hmac,%d\n", changed.ok() ? *changed : -1);

  std::printf("\n# Exchange runtime at %d messages (s)\n", messages);
  std::printf("scheme,seconds,ms_per_message\n");
  for (const char* scheme : {"rsa", "hmac", "plaintext"}) {
    double secs = TimeExchange(scheme, messages);
    std::printf("%s,%.3f,%.4f\n", scheme, secs, secs / messages * 1000.0);
  }
  return 0;
}
