// SeNDlog macro-benchmark: authenticated distributed reachability (§5.2)
// over ring and grid topologies. Reports wall time, exchanged messages,
// bytes and convergence rounds per topology size and scheme.
//
// Usage: bench_sendlog [max_ring_nodes]   (default 12)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/cluster.h"
#include "sendlog/sendlog.h"
#include "util/strings.h"

namespace {

using lbtrust::net::Cluster;
using lbtrust::trust::TrustRuntime;

const char kReachability[] =
    "At S:\n"
    "s1: reachable(S,D) :- neighbor(S,D).\n"
    "s0: reachable(Z,D)@Z :- neighbor(S,Z), reachable(S,D).\n"
    "s2: reachable(Z,D)@Z :- neighbor(S,Z), W says reachable(S,D).";

struct Row {
  std::string topology;
  std::string scheme;
  int nodes;
  double seconds;
  size_t messages;
  size_t bytes;
  size_t rounds;
  size_t reachable_pairs;
};

Row RunTopology(const std::string& topology, const std::string& scheme,
                int n, const std::vector<std::pair<int, int>>& edges) {
  Cluster::Options copts;
  copts.scheme = scheme;
  copts.max_rounds = 256;
  Cluster cluster(copts);
  TrustRuntime::Options ropts;
  ropts.rsa_bits = 512;  // keep setup fast; crypto cost is per message
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) {
    names.push_back(lbtrust::util::StrCat("n", i));
    if (!cluster.AddNode(names.back(), ropts).ok()) std::exit(1);
  }
  if (!cluster.Connect().ok()) std::exit(1);
  if (!lbtrust::sendlog::LoadSendlogOnCluster(&cluster, kReachability).ok()) {
    std::exit(1);
  }
  for (auto [a, b] : edges) {
    using lbtrust::datalog::Value;
    (void)cluster.node(names[static_cast<size_t>(a)])
        ->workspace()
        ->AddFact("neighbor", {Value::Sym(names[static_cast<size_t>(a)]),
                               Value::Sym(names[static_cast<size_t>(b)])});
    (void)cluster.node(names[static_cast<size_t>(b)])
        ->workspace()
        ->AddFact("neighbor", {Value::Sym(names[static_cast<size_t>(b)]),
                               Value::Sym(names[static_cast<size_t>(a)])});
  }

  auto start = std::chrono::steady_clock::now();
  auto stats = cluster.Run();
  auto end = std::chrono::steady_clock::now();
  if (!stats.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 stats.status().ToString().c_str());
    std::exit(1);
  }
  size_t pairs = 0;
  for (const std::string& name : names) {
    auto rows = cluster.node(name)->workspace()->Query("reachable(S,D)");
    if (rows.ok()) {
      for (const auto& t : *rows) {
        if (t[0].AsText() == name) ++pairs;
      }
    }
  }
  Row row;
  row.topology = topology;
  row.scheme = scheme;
  row.nodes = n;
  row.seconds = std::chrono::duration<double>(end - start).count();
  row.messages = stats->messages;
  row.bytes = stats->bytes;
  row.rounds = stats->rounds;
  row.reachable_pairs = pairs;
  return row;
}

std::vector<std::pair<int, int>> Ring(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i) edges.push_back({i, (i + 1) % n});
  return edges;
}

std::vector<std::pair<int, int>> Grid(int side) {
  std::vector<std::pair<int, int>> edges;
  for (int r = 0; r < side; ++r) {
    for (int c = 0; c < side; ++c) {
      int id = r * side + c;
      if (c + 1 < side) edges.push_back({id, id + 1});
      if (r + 1 < side) edges.push_back({id, id + side});
    }
  }
  return edges;
}

void Print(const Row& r) {
  std::printf("%s,%s,%d,%.3f,%zu,%zu,%zu,%zu\n", r.topology.c_str(),
              r.scheme.c_str(), r.nodes, r.seconds, r.messages, r.bytes,
              r.rounds, r.reachable_pairs);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  int max_ring = argc > 1 ? std::atoi(argv[1]) : 12;
  std::printf("# SeNDlog authenticated reachability\n");
  std::printf(
      "topology,scheme,nodes,seconds,messages,bytes,rounds,"
      "reachable_pairs\n");
  for (const char* scheme : {"plaintext", "hmac", "rsa"}) {
    for (int n = 4; n <= max_ring; n += 4) {
      Print(RunTopology("ring", scheme, n, Ring(n)));
    }
  }
  for (int side = 2; side <= 3; ++side) {
    Print(RunTopology("grid", "hmac", side * side, Grid(side)));
  }
  return 0;
}
