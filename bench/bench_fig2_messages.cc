// Figure 2 reproduction: "Execution Time over Number of Messages".
//
// Two principals, alice and bob, run a Binder-style exchange: alice exports
// N authenticated facts to bob through `says`; each message is signed on
// export and verified on import (§6). Series: RSA-1024, HMAC-SHA1,
// plaintext. The harness prints one row per message count, mirroring the
// paper's x-axis (0..10k messages), plus normalized per-message costs.
//
// Usage: bench_fig2_messages [max_messages] [step]
//   defaults: 10000 1000 (the paper's sweep)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/cluster.h"
#include "util/strings.h"

namespace {

using lbtrust::net::Cluster;
using lbtrust::trust::TrustRuntime;

double RunOnce(const std::string& scheme, int messages) {
  Cluster::Options copts;
  copts.scheme = scheme;
  copts.max_rounds = 16;
  Cluster cluster(copts);
  TrustRuntime::Options ropts;
  ropts.rsa_bits = 1024;  // the paper's key size
  auto alice = cluster.AddNode("alice", ropts);
  auto bob = cluster.AddNode("bob", ropts);
  if (!alice.ok() || !bob.ok()) {
    std::fprintf(stderr, "node setup failed\n");
    std::exit(1);
  }
  if (auto st = cluster.Connect(); !st.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  // The exchange workload: one exported (and thus signed + verified)
  // message per msg(N) fact.
  if (auto st = (*alice)->Load("says(me,bob,[| ping(N). |]) <- msg(N).");
      !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  for (int i = 0; i < messages; ++i) {
    auto st = (*alice)->workspace()->AddFact(
        "msg", {lbtrust::datalog::Value::Int(i)});
    if (!st.ok()) std::exit(1);
  }

  auto start = std::chrono::steady_clock::now();
  auto stats = cluster.Run();
  auto end = std::chrono::steady_clock::now();
  if (!stats.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 stats.status().ToString().c_str());
    std::exit(1);
  }
  // Exported tuples batch into per-(node, relation) block messages; the
  // per-tuple count is what the workload pins down.
  if (static_cast<int>(stats->tuples) != messages) {
    std::fprintf(stderr, "expected %d tuples, shipped %zu\n", messages,
                 stats->tuples);
    std::exit(1);
  }
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  int max_messages = argc > 1 ? std::atoi(argv[1]) : 10000;
  int step = argc > 2 ? std::atoi(argv[2]) : 1000;
  if (max_messages <= 0 || step <= 0) {
    std::fprintf(stderr, "usage: %s [max_messages] [step]\n", argv[0]);
    return 1;
  }

  const char* schemes[] = {"rsa", "hmac", "plaintext"};
  std::printf("# Figure 2: Execution Time (s) over Number of Messages\n");
  std::printf("# workload: alice exports N authenticated facts to bob "
              "(sign on export, verify on import)\n");
  std::printf("messages,rsa,hmac,plaintext\n");

  std::vector<std::vector<double>> series(3);
  for (int n = 0; n <= max_messages; n += step) {
    double t[3];
    for (int s = 0; s < 3; ++s) {
      t[s] = RunOnce(schemes[s], n);
      series[static_cast<size_t>(s)].push_back(t[s]);
    }
    std::printf("%d,%.3f,%.3f,%.3f\n", n, t[0], t[1], t[2]);
    std::fflush(stdout);
  }

  // Shape checks the paper's Figure 2 exhibits: linear growth per scheme
  // and RSA >> HMAC > plaintext ordering.
  auto per_message = [&](size_t s) {
    if (series[s].size() < 2) return 0.0;
    double last = series[s].back();
    double first = series[s].front();
    return (last - first) / max_messages * 1000.0;  // ms per message
  };
  std::printf("\n# per-message cost (ms): rsa=%.3f hmac=%.3f "
              "plaintext=%.3f\n",
              per_message(0), per_message(1), per_message(2));
  double hmac = per_message(1), plain = per_message(2);
  if (hmac > 0 && plain > 0) {
    std::printf("# ratios: rsa/hmac=%.1fx  rsa/plaintext=%.1fx  "
                "hmac/plaintext=%.2fx\n",
                per_message(0) / hmac, per_message(0) / plain, hmac / plain);
  }
  return 0;
}
