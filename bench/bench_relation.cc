// Relation removal ablation: Erase() used to rebuild every row and drop
// every lazily built index (cost ~ rows * indexes per removal); it now
// patches the indexes in place (swap-and-pop), so per-removal cost is
// O(indexes) and independent of relation size.
//
// Each iteration erases a 64-row batch, re-inserts it, and touches every
// index (which re-extends them over the re-inserted rows) — steady-state
// retraction churn on a large indexed relation. Under the old rebuild
// semantics the same loop cost 64 full rebuilds plus as many full index
// rebuilds as there are masks.
#include <benchmark/benchmark.h>

#include "datalog/relation.h"

namespace {

using lbtrust::datalog::Relation;
using lbtrust::datalog::Tuple;
using lbtrust::datalog::Value;

Tuple Row(int i) {
  return {Value::Int(i % 97), Value::Int(i), Value::Sym("node"),
          Value::Int(i / 3)};
}

/// range(0): rows in the relation; range(1): number of distinct bound-column
/// indexes kept materialized across the removals.
void BM_EraseWithIndexes(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int num_indexes = static_cast<int>(state.range(1));
  const uint64_t masks[] = {0b0001, 0b0010, 0b1000, 0b0011, 0b1010, 0b1001};
  auto touch_indexes = [&](Relation* rel) {
    for (int m = 0; m < num_indexes; ++m) {
      Tuple probe;
      for (size_t c = 0; c < 4; ++c) {
        if (masks[m] & (uint64_t{1} << c)) probe.push_back(Row(0)[c]);
      }
      benchmark::DoNotOptimize(rel->Lookup(masks[m], probe).size());
    }
  };
  Relation rel(4);
  for (int i = 0; i < rows; ++i) rel.Insert(Row(i));
  touch_indexes(&rel);

  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(rel.Erase(Row((i * rows) / 64)));
    }
    touch_indexes(&rel);  // in-place patching leaves nothing to extend
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(rel.Insert(Row((i * rows) / 64)));
    }
    touch_indexes(&rel);  // extend over the 64 re-inserted rows
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EraseWithIndexes)
    ->ArgsProduct({{1024, 8192, 65536}, {0, 2, 4, 6}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
