// Lint overhead on program ingress: Workspace::Load with the analyzer off
// vs. the default warn-mode, over a paper-listings-style corpus (secure
// routing, delegation chains, says-quoted policy shipping, an aggregate
// tally). The acceptance budget for the ingress analyzer is <5% overhead
// on AddProgram/Load; BM_LintProgramAlone isolates the analyzer itself.
//
// Measurement note: the lint:0/lint:1 delta is ~10us against a ~230us
// Load (~4.5%), but single alternating runs of this binary are noisier
// than the effect — the Load baseline itself swings ~10% run-to-run.
// Compare medians of several runs per arm (or an interleaved-batch
// harness) rather than one pair. The analyzer keeps its whole-run state
// in a thread-local arena, so steady-state linting performs no per-run
// pool allocations; cold first-run cost is one arena fill.
#include <benchmark/benchmark.h>

#include "datalog/lint.h"
#include "datalog/workspace.h"

namespace {

using lbtrust::datalog::LintOptions;
using lbtrust::datalog::LintProgram;
using lbtrust::datalog::Workspace;

// Representative of the paper's listings: recursive reachability, a
// negation guard, delegation via quoted says-rules, and an aggregate —
// every analyzer code path (schedule replay, stratification, dead-code,
// drift, says) sees real work.
constexpr const char* kCorpus =
    "neighbor(a, b). neighbor(b, c). neighbor(c, d). neighbor(d, a).\n"
    "reachable(S, D) <- neighbor(S, D).\n"
    "reachable(S, D) <- neighbor(S, Z), reachable(Z, D).\n"
    "unreachable(S, D) <- node(S), node(D), !reachable(S, D).\n"
    "node(a). node(b). node(c). node(d).\n"
    "admin(alice).\n"
    "delegates(alice, bob). delegates(bob, carol).\n"
    "trusted(P) <- admin(P).\n"
    "trusted(P) <- delegates(Q, P), trusted(Q).\n"
    "says(me, bob, [| grant(alice, db). |]) <- trusted(bob).\n"
    "heard(U, R) <- says(U, me, R).\n"
    "vote(red, u1). vote(red, u2). vote(blue, u3).\n"
    "tally(C, N) <- agg<<N = count(U)>> vote(C, U).\n"
    "winner(C) <- tally(C, N), N >= 2.\n"
    "grant(carol, file1, read). grant(dave, file2, write).\n"
    "canread(P, F) <- grant(P, F, read).\n"
    "canread(P, F) <- grant(P, F, write).\n"
    "audit(P, F) <- canread(P, F), trusted(P).\n";

void BM_LoadCorpus(benchmark::State& state) {
  const auto mode = static_cast<Workspace::Options::LintMode>(state.range(0));
  for (auto _ : state) {
    Workspace::Options opts;
    opts.lint = mode;
    Workspace ws(opts);
    auto st = ws.Load(kCorpus);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(ws.last_lint());
  }
}
BENCHMARK(BM_LoadCorpus)
    ->Arg(static_cast<int>(Workspace::Options::LintMode::kOff))
    ->Arg(static_cast<int>(Workspace::Options::LintMode::kWarn))
    ->ArgNames({"lint"});

void BM_LintProgramAlone(benchmark::State& state) {
  for (auto _ : state) {
    auto report = LintProgram(kCorpus, "local", LintOptions{});
    if (report.has_errors()) state.SkipWithError("corpus should be clean");
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_LintProgramAlone);

}  // namespace
