// Engine ablations (DESIGN.md §4): semi-naive vs naive fixpoint and the
// boundness-based join-order heuristic, measured on transitive closure —
// the substrate cost under every trust-management workload.
#include <string>

#include <benchmark/benchmark.h>

#include "datalog/magic.h"
#include "datalog/parser.h"
#include "datalog/pretty.h"
#include "datalog/workspace.h"
#include "util/strings.h"

namespace {

using lbtrust::datalog::CloneRule;
using lbtrust::datalog::MagicSetTransform;
using lbtrust::datalog::Rule;
using lbtrust::datalog::Value;
using lbtrust::datalog::Workspace;

// Chain with a back edge: n nodes, diameter n (worst case for rounds).
void LoadChain(Workspace* ws, int n) {
  for (int i = 0; i + 1 < n; ++i) {
    (void)ws->AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
  }
  (void)ws->AddFact("edge", {Value::Int(n - 1), Value::Int(0)});
}

// Second arg = Options::threads (1 = the classic sequential engine). The
// chain shape is the parallel evaluator's worst case: n rounds of n-row
// deltas, so per-round dispatch/merge overhead is maximally exposed.
void BM_TransitiveClosureSemiNaive(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  unsigned threads = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    Workspace::Options opts;
    opts.threads = threads;
    Workspace ws(opts);
    (void)ws.Load("path(X,Y) <- edge(X,Y).\n"
                  "path(X,Z) <- path(X,Y), edge(Y,Z).");
    LoadChain(&ws, n);
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(ws.GetRelation("path"));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TransitiveClosureSemiNaive)
    ->Args({32, 1})
    ->Args({64, 1})
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({128, 4});

// Thread-scaling series on a wide closure: layered complete-bipartite
// edges give few rounds with large deltas — the shape where intra-round
// parallelism pays, as opposed to the chain's many tiny rounds.
void BM_TransitiveClosureWide(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  unsigned threads = static_cast<unsigned>(state.range(1));
  constexpr int kLayers = 6;
  for (auto _ : state) {
    Workspace::Options opts;
    opts.threads = threads;
    Workspace ws(opts);
    (void)ws.Load("path(X,Y) <- edge(X,Y).\n"
                  "path(X,Z) <- path(X,Y), edge(Y,Z).");
    for (int layer = 0; layer + 1 < kLayers; ++layer) {
      for (int a = 0; a < width; ++a) {
        for (int b = 0; b < width; ++b) {
          (void)ws.AddFact("edge", {Value::Int(layer * 1000 + a),
                                    Value::Int((layer + 1) * 1000 + b)});
        }
      }
    }
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(ws.GetRelation("path"));
  }
  state.SetItemsProcessed(state.iterations() * width * width * kLayers);
}
BENCHMARK(BM_TransitiveClosureWide)
    ->Args({24, 1})
    ->Args({24, 2})
    ->Args({24, 4});

// Merge-phase scaling: (threads, shards) on the wide closure — the
// merge-heavy shape (few rounds, huge deduplicating inserts) where the
// round merge dominates. shards=1 forces the classic sequential merge at
// any thread count; shards>1 splits the replay across the pool, so the
// {4,1} vs {4,4} gap is exactly the parallel-merge win (and the {1,1} vs
// {1,4} gap its single-thread routing overhead).
void BM_ParallelMergeScaling(benchmark::State& state) {
  unsigned threads = static_cast<unsigned>(state.range(0));
  size_t shards = static_cast<size_t>(state.range(1));
  constexpr int kWidth = 24;
  constexpr int kLayers = 6;
  for (auto _ : state) {
    Workspace::Options opts;
    opts.threads = threads;
    opts.shards = shards;
    Workspace ws(opts);
    (void)ws.Load("path(X,Y) <- edge(X,Y).\n"
                  "path(X,Z) <- path(X,Y), edge(Y,Z).");
    for (int layer = 0; layer + 1 < kLayers; ++layer) {
      for (int a = 0; a < kWidth; ++a) {
        for (int b = 0; b < kWidth; ++b) {
          (void)ws.AddFact("edge", {Value::Int(layer * 1000 + a),
                                    Value::Int((layer + 1) * 1000 + b)});
        }
      }
    }
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(ws.GetRelation("path"));
  }
  state.SetItemsProcessed(state.iterations() * kWidth * kWidth * kLayers);
}
BENCHMARK(BM_ParallelMergeScaling)
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({2, 2})
    ->Args({4, 1})
    ->Args({4, 4})
    ->Args({4, 8});

void BM_TransitiveClosureNaive(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Workspace::Options opts;
    opts.naive_eval = true;
    Workspace ws(opts);
    (void)ws.Load("path(X,Y) <- edge(X,Y).\n"
                  "path(X,Z) <- path(X,Y), edge(Y,Z).");
    LoadChain(&ws, n);
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(ws.GetRelation("path"));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TransitiveClosureNaive)->Arg(32)->Arg(64)->Arg(128);

// Join order: a selective literal placed syntactically last. The greedy
// scheduler hoists the bound-argument probe; this measures the win over a
// program whose selective literal is already first (i.e. the heuristic's
// effect is visible as the gap between Selective and Unselective shapes).
void BM_JoinOrderSelectiveLast(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  // Full evaluation per Fixpoint(): this measures the join, not the
  // delta-aware no-change shortcut.
  Workspace::Options opts;
  opts.delta_fixpoint = false;
  Workspace ws(opts);
  (void)ws.Load("q(X,Y) <- wide(X), wide(Y), narrow(X), narrow(Y).");
  for (int i = 0; i < n; ++i) {
    (void)ws.AddFact("wide", {Value::Int(i)});
  }
  (void)ws.AddFact("narrow", {Value::Int(1)});
  (void)ws.AddFact("narrow", {Value::Int(2)});
  for (auto _ : state) {
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_JoinOrderSelectiveLast)->Arg(1000)->Arg(10000);

void BM_IndexedLookupVsScan(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Workspace::Options opts;
  opts.delta_fixpoint = false;  // measure the joins, not the no-change path
  Workspace ws(opts);
  (void)ws.Load("hit(Y) <- probe(X), data(X,Y).");
  for (int i = 0; i < n; ++i) {
    (void)ws.AddFact("data", {Value::Int(i), Value::Int(i * 7)});
  }
  (void)ws.AddFact("probe", {Value::Int(n / 2)});
  for (auto _ : state) {
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IndexedLookupVsScan)->Arg(10000)->Arg(100000);

void BM_AggregationThroughput(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Workspace::Options opts;
  opts.delta_fixpoint = false;  // measure aggregation, not the no-change path
  Workspace ws(opts);
  (void)ws.Load("tally(G,N) <- agg<<N = count(U)>> vote(G,U).");
  for (int i = 0; i < n; ++i) {
    (void)ws.AddFact("vote", {Value::Int(i % 10), Value::Int(i)});
  }
  for (auto _ : state) {
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AggregationThroughput)->Arg(1000)->Arg(10000);

// §7 future-work ablation: demand-driven (magic sets) vs full bottom-up
// evaluation of a selective query — the access-control pattern where a
// single request should not materialize the whole policy closure.
void BM_SelectiveQuery(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool use_magic = state.range(1) != 0;
  std::string program =
      "path(X,Y) <- edge(X,Y).\n"
      "path(X,Z) <- edge(X,Y), path(Y,Z).";
  std::string facts;
  for (int i = 0; i + 1 < n; ++i) {
    facts += lbtrust::util::StrCat("edge(n", i, ",n", i + 1, ").\n");
  }
  std::string query =
      lbtrust::util::StrCat("path(n", n - 5, ",X)");
  for (auto _ : state) {
    Workspace ws;
    (void)ws.AddFactText(facts);
    if (use_magic) {
      auto clauses = lbtrust::datalog::ParseProgram(program);
      std::vector<Rule> storage;
      for (const auto& clause : *clauses) {
        for (const Rule& r : clause.rules) storage.push_back(CloneRule(r));
      }
      std::vector<const Rule*> ptrs;
      for (const Rule& r : storage) ptrs.push_back(&r);
      auto atom = lbtrust::datalog::ParseAtomText(query);
      auto magic = MagicSetTransform(ptrs, *atom);
      if (!magic.ok()) state.SkipWithError("transform failed");
      for (const Rule& r : magic->rules) (void)ws.AddRule(r);
      (void)ws.AddFact(magic->seed_pred, magic->seed_args);
    } else {
      (void)ws.Load(program);
    }
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetLabel(use_magic ? "magic sets" : "full bottom-up");
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SelectiveQuery)->Args({128, 0})->Args({128, 1})
    ->Args({256, 0})->Args({256, 1});

// Incremental ablation: N facts loaded one-Fixpoint-at-a-time vs in one
// batch. Historically this quantified the "full recompute per fixpoint"
// decision; with the delta-aware fixpoint the per-fact side now rides the
// cross-fixpoint delta path, so the remaining gap is per-call overhead
// (codegen scan, constraint checks) rather than re-derivation.
void BM_IncrementalVsBatchLoad(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool incremental = state.range(1) != 0;
  for (auto _ : state) {
    Workspace ws;
    (void)ws.Load("reach(X) <- seed(X).\n"
                  "reach(Y) <- reach(X), edge(X,Y).\n"
                  "seed(0).");
    for (int i = 0; i + 1 < n; ++i) {
      (void)ws.AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
      if (incremental) {
        auto st = ws.Fixpoint();
        if (!st.ok()) state.SkipWithError(st.ToString().c_str());
      }
    }
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(incremental ? "per-fact fixpoints" : "one batch fixpoint");
}
BENCHMARK(BM_IncrementalVsBatchLoad)->Args({64, 0})->Args({64, 1});

// Session-API ablation: the repeated-read hot path. The string API re-lexes,
// re-parses and re-compiles the pattern on every call; the prepared handle
// pays that once at Prepare() and evaluates the compiled plan per call.
void BM_PreparedQuery(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool prepared = state.range(1) != 0;
  Workspace ws;
  (void)ws.Load("access(P,O,read) <- good(P), object(O).");
  for (int i = 0; i < n; ++i) {
    (void)ws.AddFact("good", {Value::Sym(lbtrust::util::StrCat("u", i))});
    (void)ws.AddFact("object", {Value::Sym(lbtrust::util::StrCat("f", i))});
  }
  auto st = ws.Fixpoint();
  if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  // The access-control hot path: a fully bound "may u1 read f1?" probe.
  auto q = ws.Prepare("access(u1,f1,read)");
  if (!q.ok()) state.SkipWithError(q.status().ToString().c_str());
  for (auto _ : state) {
    bool allowed = false;
    if (prepared) {
      allowed = *q->Exists();
    } else {
      allowed = *ws.Count("access(u1,f1,read)") > 0;
    }
    benchmark::DoNotOptimize(allowed);
  }
  state.SetLabel(prepared ? "PreparedQuery::Exists" : "string Count");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PreparedQuery)->Args({100, 0})->Args({100, 1})
    ->Args({300, 0})->Args({300, 1});

// Session-API ablation: the batched write path. The one-shot pattern runs a
// full Fixpoint() after every mutation; a Transaction stages the batch,
// applies it once and fixpoints once — and an EDB-only commit additionally
// takes the delta-aware evaluation path instead of rebuilding the store.
void BM_TransactionCommit(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool batched = state.range(1) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    Workspace::Options opts;
    // The baseline emulates the seed engine: every mutation followed by a
    // full store rebuild. The batched side keeps the delta path on.
    opts.delta_fixpoint = batched;
    Workspace ws(opts);
    (void)ws.Load("reach(X) <- seed(X).\n"
                  "reach(Y) <- reach(X), edge(X,Y).\n"
                  "seed(0).");
    (void)ws.Fixpoint();
    state.ResumeTiming();
    if (batched) {
      lbtrust::datalog::Transaction txn = ws.Begin();
      for (int i = 0; i + 1 < n; ++i) {
        txn.AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
      }
      auto st = txn.Commit();
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    } else {
      for (int i = 0; i + 1 < n; ++i) {
        (void)ws.AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
        auto st = ws.Fixpoint();
        if (!st.ok()) state.SkipWithError(st.ToString().c_str());
      }
    }
  }
  state.SetLabel(batched ? "one Transaction::Commit (delta)"
                         : "per-fact AddFact+full Fixpoint");
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TransactionCommit)->Args({64, 0})->Args({64, 1})
    ->Args({256, 0})->Args({256, 1});

// Delta-aware fixpoint vs full rebuild on a warm store: repeated small
// EDB-only commits against a large existing closure.
void BM_DeltaFixpointWarmStore(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Workspace ws;
  (void)ws.Load("path(X,Y) <- edge(X,Y).\n"
                "path(X,Z) <- path(X,Y), edge(Y,Z).");
  LoadChain(&ws, n);
  auto st = ws.Fixpoint();
  if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  int64_t next = 1000000;
  for (auto _ : state) {
    lbtrust::datalog::Transaction txn = ws.Begin();
    // An isolated edge: tiny delta against the big closure.
    txn.AddFact("edge", {Value::Int(next), Value::Int(next + 1)});
    next += 2;
    auto cst = txn.Commit();
    if (!cst.ok()) state.SkipWithError(cst.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeltaFixpointWarmStore)->Arg(64)->Arg(128);

void BM_ConstraintCheckOverhead(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool with_constraints = state.range(1) != 0;
  Workspace::Options opts;
  opts.check_constraints = with_constraints;
  opts.delta_fixpoint = false;  // measure the checks on a full rebuild
  Workspace ws(opts);
  (void)ws.Load("p(X,Y) -> t(X), t(Y).");
  for (int i = 0; i < n; ++i) {
    (void)ws.AddFact("t", {Value::Int(i)});
    (void)ws.AddFact("p", {Value::Int(i), Value::Int((i + 1) % n)});
  }
  for (auto _ : state) {
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ConstraintCheckOverhead)
    ->Args({10000, 0})
    ->Args({10000, 1});

}  // namespace
