// Engine ablations (DESIGN.md §4): semi-naive vs naive fixpoint and the
// boundness-based join-order heuristic, measured on transitive closure —
// the substrate cost under every trust-management workload.
#include <string>

#include <benchmark/benchmark.h>

#include "datalog/magic.h"
#include "datalog/parser.h"
#include "datalog/pretty.h"
#include "datalog/workspace.h"
#include "util/strings.h"

namespace {

using lbtrust::datalog::CloneRule;
using lbtrust::datalog::MagicSetTransform;
using lbtrust::datalog::Rule;
using lbtrust::datalog::Value;
using lbtrust::datalog::Workspace;

// Chain with a back edge: n nodes, diameter n (worst case for rounds).
void LoadChain(Workspace* ws, int n) {
  for (int i = 0; i + 1 < n; ++i) {
    (void)ws->AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
  }
  (void)ws->AddFact("edge", {Value::Int(n - 1), Value::Int(0)});
}

void BM_TransitiveClosureSemiNaive(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Workspace ws;
    (void)ws.Load("path(X,Y) <- edge(X,Y).\n"
                  "path(X,Z) <- path(X,Y), edge(Y,Z).");
    LoadChain(&ws, n);
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(ws.GetRelation("path"));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TransitiveClosureSemiNaive)->Arg(32)->Arg(64)->Arg(128);

void BM_TransitiveClosureNaive(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Workspace::Options opts;
    opts.naive_eval = true;
    Workspace ws(opts);
    (void)ws.Load("path(X,Y) <- edge(X,Y).\n"
                  "path(X,Z) <- path(X,Y), edge(Y,Z).");
    LoadChain(&ws, n);
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(ws.GetRelation("path"));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TransitiveClosureNaive)->Arg(32)->Arg(64)->Arg(128);

// Join order: a selective literal placed syntactically last. The greedy
// scheduler hoists the bound-argument probe; this measures the win over a
// program whose selective literal is already first (i.e. the heuristic's
// effect is visible as the gap between Selective and Unselective shapes).
void BM_JoinOrderSelectiveLast(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Workspace ws;
  (void)ws.Load("q(X,Y) <- wide(X), wide(Y), narrow(X), narrow(Y).");
  for (int i = 0; i < n; ++i) {
    (void)ws.AddFact("wide", {Value::Int(i)});
  }
  (void)ws.AddFact("narrow", {Value::Int(1)});
  (void)ws.AddFact("narrow", {Value::Int(2)});
  for (auto _ : state) {
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_JoinOrderSelectiveLast)->Arg(1000)->Arg(10000);

void BM_IndexedLookupVsScan(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Workspace ws;
  (void)ws.Load("hit(Y) <- probe(X), data(X,Y).");
  for (int i = 0; i < n; ++i) {
    (void)ws.AddFact("data", {Value::Int(i), Value::Int(i * 7)});
  }
  (void)ws.AddFact("probe", {Value::Int(n / 2)});
  for (auto _ : state) {
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IndexedLookupVsScan)->Arg(10000)->Arg(100000);

void BM_AggregationThroughput(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Workspace ws;
  (void)ws.Load("tally(G,N) <- agg<<N = count(U)>> vote(G,U).");
  for (int i = 0; i < n; ++i) {
    (void)ws.AddFact("vote", {Value::Int(i % 10), Value::Int(i)});
  }
  for (auto _ : state) {
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AggregationThroughput)->Arg(1000)->Arg(10000);

// §7 future-work ablation: demand-driven (magic sets) vs full bottom-up
// evaluation of a selective query — the access-control pattern where a
// single request should not materialize the whole policy closure.
void BM_SelectiveQuery(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool use_magic = state.range(1) != 0;
  std::string program =
      "path(X,Y) <- edge(X,Y).\n"
      "path(X,Z) <- edge(X,Y), path(Y,Z).";
  std::string facts;
  for (int i = 0; i + 1 < n; ++i) {
    facts += lbtrust::util::StrCat("edge(n", i, ",n", i + 1, ").\n");
  }
  std::string query =
      lbtrust::util::StrCat("path(n", n - 5, ",X)");
  for (auto _ : state) {
    Workspace ws;
    (void)ws.AddFactText(facts);
    if (use_magic) {
      auto clauses = lbtrust::datalog::ParseProgram(program);
      std::vector<Rule> storage;
      for (const auto& clause : *clauses) {
        for (const Rule& r : clause.rules) storage.push_back(CloneRule(r));
      }
      std::vector<const Rule*> ptrs;
      for (const Rule& r : storage) ptrs.push_back(&r);
      auto atom = lbtrust::datalog::ParseAtomText(query);
      auto magic = MagicSetTransform(ptrs, *atom);
      if (!magic.ok()) state.SkipWithError("transform failed");
      for (const Rule& r : magic->rules) (void)ws.AddRule(r);
      (void)ws.AddFact(magic->seed_pred, magic->seed_args);
    } else {
      (void)ws.Load(program);
    }
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetLabel(use_magic ? "magic sets" : "full bottom-up");
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SelectiveQuery)->Args({128, 0})->Args({128, 1})
    ->Args({256, 0})->Args({256, 1});

// Incremental ablation: N facts loaded one-Fixpoint-at-a-time vs in one
// batch. The engine recomputes derived strata per Fixpoint (semi-naive
// inside, no cross-fixpoint deltas), so the gap quantifies DESIGN.md's
// "full recompute per fixpoint" decision.
void BM_IncrementalVsBatchLoad(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool incremental = state.range(1) != 0;
  for (auto _ : state) {
    Workspace ws;
    (void)ws.Load("reach(X) <- seed(X).\n"
                  "reach(Y) <- reach(X), edge(X,Y).\n"
                  "seed(0).");
    for (int i = 0; i + 1 < n; ++i) {
      (void)ws.AddFact("edge", {Value::Int(i), Value::Int(i + 1)});
      if (incremental) {
        auto st = ws.Fixpoint();
        if (!st.ok()) state.SkipWithError(st.ToString().c_str());
      }
    }
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(incremental ? "per-fact fixpoints" : "one batch fixpoint");
}
BENCHMARK(BM_IncrementalVsBatchLoad)->Args({64, 0})->Args({64, 1});

void BM_ConstraintCheckOverhead(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool with_constraints = state.range(1) != 0;
  Workspace::Options opts;
  opts.check_constraints = with_constraints;
  Workspace ws(opts);
  (void)ws.Load("p(X,Y) -> t(X), t(Y).");
  for (int i = 0; i < n; ++i) {
    (void)ws.AddFact("t", {Value::Int(i)});
    (void)ws.AddFact("p", {Value::Int(i), Value::Int((i + 1) % n)});
  }
  for (auto _ : state) {
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ConstraintCheckOverhead)
    ->Args({10000, 0})
    ->Args({10000, 1});

}  // namespace
