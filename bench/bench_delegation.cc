// Delegation ablations (§4.2): cost of delegation chains with depth
// enforcement, and threshold (k-of-n) evaluation as the group grows.
#include <string>

#include <benchmark/benchmark.h>

#include "datalog/workspace.h"
#include "meta/codegen.h"
#include "trust/delegation.h"
#include "util/strings.h"

namespace {

using lbtrust::datalog::Value;
using lbtrust::datalog::Workspace;

// Shared-workspace chain p0 -> p1 -> ... -> p_depth, each hop delegating
// `perm` with a depth limit that exactly admits the chain.
void BM_DelegationChainDepth(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Workspace::Options opts;
    opts.principal = "p0";
    Workspace ws(opts);
    for (int i = 0; i <= depth; ++i) {
      std::string p = lbtrust::util::StrCat("p", i);
      (void)ws.AddFact("prin", {Value::Sym(p)});
      (void)ws.LoadAs(p, "active(R) <- says(_,me,R).");
      (void)ws.LoadAs(p, lbtrust::trust::DelegationDepthRules());
    }
    (void)ws.AddFactTextAs(
        "p0", lbtrust::util::StrCat("delDepth(me,p1,perm,", depth - 1,
                                    "). delegates(me,p1,perm)."));
    for (int i = 1; i < depth; ++i) {
      (void)ws.AddFactTextAs(lbtrust::util::StrCat("p", i),
                             lbtrust::util::StrCat("delegates(me,p", i + 1,
                                                   ",perm)."));
    }
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_DelegationChainDepth)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ThresholdGroupSize(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Workspace::Options opts;
  opts.principal = "bank";
  opts.delta_fixpoint = false;  // measure aggregation, not the no-change path
  Workspace ws(opts);
  (void)ws.Load(lbtrust::trust::ThresholdRules("ok", "grp", n / 2));
  for (int i = 0; i < n; ++i) {
    std::string b = lbtrust::util::StrCat("b", i);
    (void)ws.AddFact("prin", {Value::Sym(b)});
    (void)ws.AddFact("pringroup", {Value::Sym(b), Value::Sym("grp")});
    auto code = lbtrust::meta::QuoteRuleText("ok(cust).");
    (void)ws.AddFact("says",
                     {Value::Sym(b), Value::Sym("bank"), *code});
  }
  for (auto _ : state) {
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ThresholdGroupSize)->Arg(8)->Arg(64)->Arg(512);

void BM_SpeaksForActivation(benchmark::State& state) {
  // N statements from a delegator, all activated through speaks-for.
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Workspace::Options opts;
    opts.principal = "alice";
    Workspace ws(opts);
    (void)ws.Load("prin(alice). prin(bob).");
    (void)ws.Load(lbtrust::trust::SpeaksForRule("bob"));
    for (int i = 0; i < n; ++i) {
      auto code = lbtrust::meta::QuoteRuleText(
          lbtrust::util::StrCat("stmt(", i, ")."));
      (void)ws.AddFact("says",
                       {Value::Sym("bob"), Value::Sym("alice"), *code});
    }
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SpeaksForActivation)->Arg(100)->Arg(1000);

}  // namespace
