// Meta-programming ablations: reflection cost per installed rule, quoted
// pattern-match throughput, and the codegen (active-rule installation)
// loop — the machinery behind §3.3/§4.
#include <memory>
#include <string>

#include <benchmark/benchmark.h>

#include "datalog/workspace.h"
#include "meta/codegen.h"
#include "meta/meta_model.h"
#include "util/strings.h"

namespace {

using lbtrust::datalog::Value;
using lbtrust::datalog::Workspace;

void BM_RuleInstall(benchmark::State& state) {
  bool with_meta = state.range(0) != 0;
  for (auto _ : state) {
    Workspace ws;
    if (with_meta) {
      auto st = lbtrust::meta::EnableMetaModel(&ws);
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    }
    for (int i = 0; i < 100; ++i) {
      auto st = ws.AddRuleText(lbtrust::util::StrCat(
          "out", i, "(X,Y) <- in", i, "(X,Z), mid", i, "(Z,Y)."));
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    }
    benchmark::DoNotOptimize(ws.rules());
  }
  state.SetItemsProcessed(state.iterations() * 100);
  state.SetLabel(with_meta ? "reflection on" : "reflection off");
}
BENCHMARK(BM_RuleInstall)->Arg(0)->Arg(1);

void BM_QuotedPatternMatch(benchmark::State& state) {
  // N code values probed by a pattern rule per fixpoint.
  int n = static_cast<int>(state.range(0));
  Workspace::Options opts;
  opts.delta_fixpoint = false;  // re-evaluate the pattern probe every time
  Workspace ws(opts);
  (void)ws.Load(
      "got(P,O) <- said([| access(P,O,read). |]).");
  for (int i = 0; i < n; ++i) {
    auto code = lbtrust::meta::QuoteRuleText(lbtrust::util::StrCat(
        "access(u", i, ",f", i % 7, ",", i % 2 ? "read" : "write", ")."));
    (void)ws.AddFact("said", {*code});
  }
  for (auto _ : state) {
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QuotedPatternMatch)->Arg(1000)->Arg(10000);

void BM_CodegenActivation(benchmark::State& state) {
  // Facts derived into `active` become installed facts: measures the
  // codegen round-trip per activated item.
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Workspace ws;
    (void)ws.Load("active([| granted(X). |]) <- request(X).");
    for (int i = 0; i < n; ++i) {
      (void)ws.AddFact("request", {Value::Int(i)});
    }
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CodegenActivation)->Arg(100)->Arg(1000);

void BM_CodeValueConstruction(benchmark::State& state) {
  // Quoted-head construction: one new code value per derived tuple.
  int n = static_cast<int>(state.range(0));
  Workspace::Options opts;
  opts.delta_fixpoint = false;  // re-derive the code values every time
  Workspace ws(opts);
  (void)ws.Load("out([| claim(X,Y). |]) <- in(X,Y).");
  for (int i = 0; i < n; ++i) {
    (void)ws.AddFact("in", {Value::Int(i), Value::Int(i + 1)});
  }
  for (auto _ : state) {
    auto st = ws.Fixpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CodeValueConstruction)->Arg(1000)->Arg(10000);

}  // namespace
