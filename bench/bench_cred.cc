// Credential-subsystem bench: the two performance levers of linked,
// content-addressed evidence — (1) memoized signature verification (verify
// once per content hash; every re-import of the same credential set skips
// RSA entirely) and (2) batched import (a whole linked set materializes
// through one Transaction + one delta-aware fixpoint).
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "cred/credential.h"
#include "cred/store.h"
#include "trust/trust_runtime.h"
#include "util/strings.h"

namespace {

using lbtrust::cred::Credential;
using lbtrust::cred::CredentialStore;
using lbtrust::cred::SignCredential;
using lbtrust::trust::TrustRuntime;

std::unique_ptr<TrustRuntime> MakeRuntime(const std::string& name) {
  TrustRuntime::Options opts;
  opts.principal = name;
  opts.rsa_bits = 1024;  // the paper's key size: realistic verify cost
  auto rt = TrustRuntime::Create(opts);
  if (!rt.ok()) std::abort();
  return std::move(*rt);
}

TrustRuntime& Issuer() {
  static TrustRuntime* rt = MakeRuntime("alice").release();
  return *rt;
}

Credential MakeCredential(int i) {
  Credential cred;
  cred.issuer = "alice";
  cred.key_fingerprint =
      lbtrust::crypto::KeyFingerprint(Issuer().keypair().public_key);
  cred.payload = lbtrust::util::StrCat("grant(p", i, ",file", i, ",read).");
  if (!SignCredential(&cred, Issuer().keypair().private_key).ok()) {
    std::abort();
  }
  return cred;
}

/// Cold verification: a fresh store every iteration, so each
/// VerifySignature runs full RSA.
void BM_VerifyColdRsa(benchmark::State& state) {
  Credential cred = MakeCredential(0);
  for (auto _ : state) {
    CredentialStore store;
    std::string hash = store.Put(cred);
    auto ok = store.VerifySignature(hash, Issuer().keypair().public_key);
    if (!ok.ok() || !*ok) std::abort();
    benchmark::DoNotOptimize(hash);
  }
}
BENCHMARK(BM_VerifyColdRsa);

/// Cache-hit verification: the store has seen the credential before, so
/// the check is a map lookup — the ≥10x (in practice orders of magnitude)
/// speedup that makes repeated imports of shared credential sets cheap.
void BM_VerifyCacheHit(benchmark::State& state) {
  Credential cred = MakeCredential(0);
  CredentialStore store;
  std::string hash = store.Put(cred);
  auto first = store.VerifySignature(hash, Issuer().keypair().public_key);
  if (!first.ok() || !*first) std::abort();
  for (auto _ : state) {
    auto ok = store.VerifySignature(hash, Issuer().keypair().public_key);
    benchmark::DoNotOptimize(*ok);
  }
}
BENCHMARK(BM_VerifyCacheHit);

/// Batched import throughput: one bundle carrying a chain of N linked
/// credentials lands in the receiver as one transaction + one fixpoint.
/// Counters report credentials/second.
void BM_ImportBatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto& alice = Issuer();
  std::vector<std::string> links;
  std::string root;
  for (int i = 0; i < n; ++i) {
    auto hash = alice.Issue(
        lbtrust::util::StrCat("grant(p", i, ",file", i, ",read)."),
        links.empty() ? std::vector<std::string>{}
                      : std::vector<std::string>{links.back()});
    if (!hash.ok()) std::abort();
    links.push_back(*hash);
    root = *hash;
  }
  auto bundle = alice.ExportCredential(root);
  if (!bundle.ok()) std::abort();
  std::unique_ptr<TrustRuntime> bob;
  for (auto _ : state) {
    // Receiver construction and destruction both stay untimed.
    state.PauseTiming();
    bob = MakeRuntime("bob");
    if (!bob->AddPeer("alice", alice.keypair().public_key).ok()) {
      std::abort();
    }
    state.ResumeTiming();
    auto stats = bob->ImportCredentials(*bundle);
    if (!stats.ok() || stats->credentials != static_cast<size_t>(n)) {
      std::abort();
    }
    state.PauseTiming();
    bob.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ImportBatch)->Arg(4)->Arg(16)->Arg(64);

/// Warm re-import of the same bundle: content dedup + verification cache
/// mean no RSA at all; the cost is pure store/fixpoint work.
void BM_ReimportWarm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto& alice = Issuer();
  std::vector<std::string> links;
  std::string root;
  for (int i = 0; i < n; ++i) {
    auto hash = alice.Issue(
        lbtrust::util::StrCat("warm(p", i, ",file", i, ",read)."),
        links.empty() ? std::vector<std::string>{}
                      : std::vector<std::string>{links.back()});
    if (!hash.ok()) std::abort();
    links.push_back(*hash);
    root = *hash;
  }
  auto bundle = alice.ExportCredential(root);
  if (!bundle.ok()) std::abort();
  auto bob = MakeRuntime("bob");
  if (!bob->AddPeer("alice", alice.keypair().public_key).ok()) std::abort();
  if (!bob->ImportCredentials(*bundle).ok()) std::abort();
  for (auto _ : state) {
    auto stats = bob->ImportCredentials(*bundle);
    if (!stats.ok()) std::abort();
  }
  if (bob->credentials()->stats().rsa_verifies !=
      static_cast<size_t>(n)) {
    std::abort();  // warm path must never have re-run RSA
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ReimportWarm)->Arg(16);

}  // namespace
